#include "session/pipeline.h"

#include <algorithm>

#include "common/timer.h"
#include "optimizer/completion.h"
#include "optimizer/greedy_optimizer.h"

namespace cote {

StatusOr<OptimizeResult> CompilationPipeline::CompilePlan(
    const QueryGraph& graph) {
  if (graph.num_tables() == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  return ctx_->options().level == OptimizationLevel::kLow ? PlanLow(graph)
                                                          : PlanHigh(graph);
}

StatusOr<OptimizeResult> CompilationPipeline::PlanLow(
    const QueryGraph& graph) {
  StopWatch watch;
  StageSeconds stages;
  StopWatch stage;

  // ---- Bind.
  ctx_->Reset(graph);
  OptimizeResult result;
  result.memo = ctx_->NewMemo();
  const CostModel& cost = ctx_->cost_model();
  const CardinalityModel& card = ctx_->refined_cardinality();
  stages.bind = stage.ElapsedSeconds();

  // ---- Enumerate (the greedy pass is kLow's degenerate "enumeration":
  // one join order, no properties).
  stage.Restart();
  GreedyOptimizer greedy(graph, cost, card, result.memo.get());
  result.best_plan = greedy.Run();
  stages.enumerate = stage.ElapsedSeconds();
  if (result.best_plan == nullptr) {
    return Status::Internal("greedy optimizer produced no plan");
  }

  // ---- Complete: kLow skips query completion by design (single plan, no
  // enforcers) — pinned by the golden equivalence tests.

  // ---- Finalize. The stage timer stops before the total is read: every
  // stage interval lies inside the total window, so the per-stage sum can
  // never exceed total_seconds (pinned by StageSumNeverExceedsTotal).
  stage.Restart();
  result.stats.best_cost = result.best_plan->cost;
  result.stats.plans_stored = 0;
  stages.finalize = stage.ElapsedSeconds();
  result.stats.total_seconds = watch.ElapsedSeconds();
  ctx_->stats().RecordStages(stages);
  ++ctx_->stats().plans_compiled;
  return result;
}

StatusOr<OptimizeResult> CompilationPipeline::PlanHigh(
    const QueryGraph& graph) {
  StopWatch watch;
  StageSeconds stages;
  StopWatch stage;

  // ---- Bind.
  ctx_->Reset(graph);
  OptimizeResult result;
  result.memo = ctx_->NewMemo();
  Memo* memo = result.memo.get();
  const CostModel& cost = ctx_->cost_model();
  const CardinalityModel& card = ctx_->refined_cardinality();
  const InterestingOrders& interesting = ctx_->interesting_orders();
  PlanGenerator generator(graph, memo, cost, card, interesting,
                          ctx_->options().plangen);
  stages.bind = stage.ElapsedSeconds();

  // ---- Enumerate.
  StopWatch enum_watch;
  result.stats.enumeration = ctx_->Enumerate(&generator);
  double run_seconds = enum_watch.ElapsedSeconds();
  stages.enumerate = run_seconds;

  MemoEntry* top = memo->Find(graph.AllTables());
  if (top == nullptr || top->Cheapest() == nullptr) {
    return Status::Internal(
        "no complete plan: join graph is disconnected and Cartesian "
        "products are disabled");
  }

  // ---- Complete ("other" work: aggregation and final ordering).
  stage.Restart();
  result.best_plan = CompleteQuery(graph, memo, top, cost);
  stages.complete = stage.ElapsedSeconds();

  // ---- Finalize: statistics.
  stage.Restart();
  OptimizeStats& st = result.stats;
  st.join_plans_generated = generator.join_plans_generated();
  st.enforcer_plans = generator.enforcer_plans();
  st.scan_plans = generator.scan_plans();
  st.pruned_by_pilot = generator.pruned_by_pilot();
  st.plans_stored = memo->plans_stored();
  st.memo_entries = memo->num_entries();
  st.memo_bytes = memo->ApproxMemoryBytes();
  st.best_cost = result.best_plan->cost;
  for (int m = 0; m < kNumJoinMethods; ++m) {
    st.gen_seconds[m] =
        generator.gen_time(static_cast<JoinMethod>(m)).TotalSeconds();
  }
  st.save_seconds = generator.save_time().TotalSeconds();
  st.init_seconds = generator.init_time().TotalSeconds();
  st.enum_seconds = std::max(0.0, run_seconds - generator.visitor_seconds());
  // Stage timer stops before the total snapshot; see PlanLow.
  stages.finalize = stage.ElapsedSeconds();
  st.total_seconds = watch.ElapsedSeconds();
  ctx_->stats().RecordStages(stages);
  ++ctx_->stats().plans_compiled;
  return result;
}

CompileTimeEstimate CompilationPipeline::CompileEstimate(
    const QueryGraph& graph, const TimeModel& time_model) {
  StopWatch watch;
  StageSeconds stages;
  StopWatch stage;
  CompileTimeEstimate out;

  // ---- Bind: warm when the same query was just estimated (no heap
  // traffic past the first estimate — the session alloc test's subject).
  ctx_->Reset(graph);
  PlanCounter& counter = ctx_->counter();
  counter.ResetCounts();
  stages.bind = stage.ElapsedSeconds();

  // ---- Enumerate (plan-counting visitor — §3.1's other half).
  stage.Restart();
  out.enumeration = ctx_->Enumerate(&counter);
  stages.enumerate = stage.ElapsedSeconds();

  // ---- Complete, counted: what plan mode's completion stage would add.
  stage.Restart();
  out.completion_plans = CountCompletionPlans(graph);
  stages.complete = stage.ElapsedSeconds();

  // ---- Finalize: counts → seconds via the §3.5 time model.
  stage.Restart();
  out.plan_estimates = counter.estimated_plans();
  out.estimated_seconds = time_model.EstimateSeconds(out.plan_estimates);
  out.plan_slots = counter.TotalPlanSlots();
  out.estimated_memo_bytes = out.plan_slots * CompileTimeEstimate::kBytesPerPlan;
  // Stage timer stops before the total snapshot; see PlanLow.
  stages.finalize = stage.ElapsedSeconds();
  out.estimation_seconds = watch.ElapsedSeconds();
  ctx_->stats().RecordStages(stages);
  ++ctx_->stats().estimates_run;
  return out;
}

}  // namespace cote
