#include "session/pipeline.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>

#include "common/fault_points.h"
#include "common/timer.h"
#include "optimizer/completion.h"
#include "optimizer/greedy_optimizer.h"
#include "optimizer/parallel_enumerator.h"

namespace cote {

namespace {

/// Plan-mode sharded visitor: one PlanGeneratorT<MemoShard> per worker,
/// each generating into a private memo shard with a private
/// refined-cardinality model (CardinalityModel memoizes internally
/// without synchronization, so workers must not share one). Per-compile,
/// like the serial PlanGenerator; the memo owns its shards, so merged
/// entries and plans share the result's lifetime.
class ShardedPlanGeneration : public ShardedVisitor {
 public:
  ShardedPlanGeneration(const QueryGraph& graph, Memo* memo,
                        const CostModel& cost,
                        const InterestingOrders& interesting,
                        const PlanGenOptions& options, int workers)
      : memo_(memo) {
    memo_->PrepareShards(workers);
    for (int w = 0; w < workers; ++w) {
      cards_.emplace_back(graph, /*use_key_refinement=*/true);
    }
    for (int w = 0; w < workers; ++w) {
      gens_.emplace_back(graph, memo_->shard(w), cost,
                         cards_[static_cast<size_t>(w)], interesting,
                         options);
    }
  }

  JoinVisitor* Shard(int worker) override {
    return &gens_[static_cast<size_t>(worker)];
  }
  void SetShardBudget(int worker, ResourceBudget* budget) override {
    memo_->shard(worker)->set_budget(budget);
  }
  void MergeRank() override { memo_->AdoptShardRank(); }

  // Σ over workers: the parallel run's equivalents of the serial
  // generator's counters and timers (each is worker-private during the
  // run, so the sums are exact, not racy snapshots).
  JoinTypeCounts join_plans_generated() const {
    JoinTypeCounts total;
    for (const auto& g : gens_) total += g.join_plans_generated();
    return total;
  }
  int64_t enforcer_plans() const {
    int64_t n = 0;
    for (const auto& g : gens_) n += g.enforcer_plans();
    return n;
  }
  int64_t scan_plans() const {
    int64_t n = 0;
    for (const auto& g : gens_) n += g.scan_plans();
    return n;
  }
  int64_t pruned_by_pilot() const {
    int64_t n = 0;
    for (const auto& g : gens_) n += g.pruned_by_pilot();
    return n;
  }
  double gen_seconds(JoinMethod m) const {
    double s = 0;
    for (const auto& g : gens_) s += g.gen_time(m).TotalSeconds();
    return s;
  }
  double save_seconds() const {
    double s = 0;
    for (const auto& g : gens_) s += g.save_time().TotalSeconds();
    return s;
  }
  double init_seconds() const {
    double s = 0;
    for (const auto& g : gens_) s += g.init_time().TotalSeconds();
    return s;
  }
  double visitor_seconds() const {
    double s = 0;
    for (const auto& g : gens_) s += g.visitor_seconds();
    return s;
  }

 private:
  Memo* memo_;
  std::deque<CardinalityModel> cards_;  // non-movable; deque for stability
  std::deque<PlanGeneratorT<MemoShard>> gens_;
};

/// Estimate-mode sharded visitor over the context's session-owned shard
/// counters (arena reuse across queries — warm estimates stay
/// allocation-steady). MergeRank adopts in worker order, replaying the
/// serial entry-creation order.
class ShardedPlanCounting : public ShardedVisitor {
 public:
  ShardedPlanCounting(CompilationContext* ctx, int workers)
      : ctx_(ctx), workers_(workers) {
    // Materialize every shard counter up front: worker threads must not
    // hit the lazy build path concurrently.
    for (int w = 0; w < workers_; ++w) ctx_->shard_counter(w);
  }

  JoinVisitor* Shard(int worker) override {
    return &ctx_->shard_counter(worker);
  }
  void SetShardBudget(int worker, ResourceBudget* budget) override {
    ctx_->shard_counter(worker).set_budget(budget);
  }
  void MergeRank() override {
    for (int w = 0; w < workers_; ++w) {
      ctx_->counter().AdoptShardRank(&ctx_->shard_counter(w));
    }
  }

 private:
  CompilationContext* ctx_;
  int workers_;
};

}  // namespace

StatusOr<OptimizeResult> CompilationPipeline::CompilePlan(
    const QueryGraph& graph) {
  if (graph.num_tables() == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  return ctx_->options().level == OptimizationLevel::kLow
             ? PlanLow(graph)
             : PlanHigh(graph, nullptr);
}

StatusOr<OptimizeResult> CompilationPipeline::CompilePlan(
    const QueryGraph& graph, const ResourceLimits& limits) {
  if (graph.num_tables() == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  // kLow ignores the budget by design (see the header): the greedy pass is
  // itself the degraded mode and runs in polynomial time.
  return ctx_->options().level == OptimizationLevel::kLow
             ? PlanLow(graph)
             : PlanHigh(graph, &limits);
}

StatusOr<OptimizeResult> CompilationPipeline::CompilePlanGreedy(
    const QueryGraph& graph) {
  if (graph.num_tables() == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  // Disarm any budget a previous governed compile left armed: PlanLow
  // never arms one itself, and its stage events read the budget's tripped
  // state — stale trip evidence must not leak into this run's observer.
  ctx_->budget().Disarm();
  return PlanLow(graph);
}

StatusOr<OptimizeResult> CompilationPipeline::PlanLow(
    const QueryGraph& graph) {
  StopWatch watch;
  StageSeconds stages;
  StopWatch stage;

  // ---- Bind.
  ctx_->Reset(graph);
  OptimizeResult result;
  result.memo = ctx_->NewMemo();
  const CostModel& cost = ctx_->cost_model();
  const CardinalityModel& card = ctx_->refined_cardinality();
  stages.bind = stage.ElapsedSeconds();
  Notify(CompileStage::kBind, stages.bind, /*estimate_mode=*/false);
  if (Status fault = ConsultFaultPoint(kFaultPlanBind, &graph); !fault.ok()) {
    ctx_->AbandonBinding();
    return fault;
  }

  // ---- Enumerate (the greedy pass is kLow's degenerate "enumeration":
  // one join order, no properties).
  stage.Restart();
  GreedyOptimizer greedy(graph, cost, card, result.memo.get());
  result.best_plan = greedy.Run();
  stages.enumerate = stage.ElapsedSeconds();
  Notify(CompileStage::kEnumerate, stages.enumerate, /*estimate_mode=*/false);
  if (result.best_plan == nullptr) {
    ctx_->AbandonBinding();
    return Status::Internal("greedy optimizer produced no plan");
  }
  if (Status fault = ConsultFaultPoint(kFaultPlanEnumerate, &graph);
      !fault.ok()) {
    ctx_->AbandonBinding();
    return fault;
  }

  // ---- Complete: kLow skips query completion by design (single plan, no
  // enforcers) — pinned by the golden equivalence tests.

  // ---- Finalize. The stage timer stops before the total is read: every
  // stage interval lies inside the total window, so the per-stage sum can
  // never exceed total_seconds (pinned by StageSumNeverExceedsTotal).
  stage.Restart();
  result.stats.best_cost = result.best_plan->cost;
  result.stats.plans_stored = 0;
  stages.finalize = stage.ElapsedSeconds();
  result.stats.total_seconds = watch.ElapsedSeconds();
  Notify(CompileStage::kFinalize, stages.finalize, /*estimate_mode=*/false);
  if (Status fault = ConsultFaultPoint(kFaultPlanFinalize, &graph);
      !fault.ok()) {
    ctx_->AbandonBinding();
    return fault;
  }
  ctx_->stats().RecordStages(stages);
  ++ctx_->stats().plans_compiled;
  return result;
}

StatusOr<OptimizeResult> CompilationPipeline::PlanHigh(
    const QueryGraph& graph, const ResourceLimits* limits) {
  StopWatch watch;
  StageSeconds stages;
  StopWatch stage;

  // A fresh budget per compile; fully unlimited limits arm nothing, so
  // `armed` stays null and every downstream path is the ungoverned one.
  ResourceBudget& budget = ctx_->budget();
  budget.Disarm();
  if (limits != nullptr) budget.Arm(*limits);
  ResourceBudget* armed = budget.armed() ? &budget : nullptr;

  // ---- Bind.
  ctx_->Reset(graph);
  OptimizeResult result;
  result.memo = ctx_->NewMemo();
  Memo* memo = result.memo.get();
  const CostModel& cost = ctx_->cost_model();
  const CardinalityModel& card = ctx_->refined_cardinality();
  const InterestingOrders& interesting = ctx_->interesting_orders();
  PlanGenerator generator(graph, memo, cost, card, interesting,
                          ctx_->options().plangen);
  stages.bind = stage.ElapsedSeconds();
  Notify(CompileStage::kBind, stages.bind, /*estimate_mode=*/false);
  if (Status fault = ConsultFaultPoint(kFaultPlanBind, &graph); !fault.ok()) {
    ctx_->AbandonBinding();
    return fault;
  }

  // ---- Enumerate. The memo charges each generated plan while armed; the
  // pointer is cleared before any path lets the memo escape into the
  // result (which can outlive the session-owned budget). With
  // parallel_workers > 1 and an eligible query the rank-parallel
  // enumerator runs instead, generating through per-worker memo shards
  // (plans charged to per-worker budgets, folded at rank barriers);
  // otherwise this is the exact serial code path.
  StopWatch enum_watch;
  const int par_workers = ctx_->EffectiveParallelWorkers();
  std::optional<ShardedPlanGeneration> sharded;
  double busy_seconds = 0;
  memo->set_budget(armed);
  if (par_workers > 1) {
    sharded.emplace(graph, memo, cost, interesting,
                    ctx_->options().plangen, par_workers);
    ParallelEnumerationResult par = ctx_->parallel_enumerator().Run(
        graph, ctx_->options().enumeration, &*sharded, armed);
    result.stats.enumeration = par.stats;
    busy_seconds = par.busy_seconds;
  } else {
    result.stats.enumeration = ctx_->Enumerate(&generator, armed);
  }
  memo->set_budget(nullptr);
  double run_seconds = enum_watch.ElapsedSeconds();
  stages.enumerate = run_seconds;
  Notify(CompileStage::kEnumerate, stages.enumerate, /*estimate_mode=*/false);
  if (Status fault = ConsultFaultPoint(kFaultPlanEnumerate, &graph);
      !fault.ok()) {
    ctx_->AbandonBinding();
    return fault;
  }

  if (armed != nullptr && armed->tripped()) {
    if (limits->on_trip == BudgetAction::kFail) {
      Status trip = armed->TripStatus();
      ctx_->AbandonBinding();
      return trip;
    }
    return DegradeToGreedy(graph, watch, &stages, &result);
  }

  MemoEntry* top = memo->Find(graph.AllTables());
  if (top == nullptr || top->Cheapest() == nullptr) {
    ctx_->AbandonBinding();
    return Status::Internal(
        "no complete plan: join graph is disconnected and Cartesian "
        "products are disabled");
  }

  // ---- Complete ("other" work: aggregation and final ordering).
  stage.Restart();
  result.best_plan = CompleteQuery(graph, memo, top, cost);
  stages.complete = stage.ElapsedSeconds();
  Notify(CompileStage::kComplete, stages.complete, /*estimate_mode=*/false);
  if (Status fault = ConsultFaultPoint(kFaultPlanComplete, &graph);
      !fault.ok()) {
    ctx_->AbandonBinding();
    return fault;
  }

  // ---- Finalize: statistics. The parallel branch reads the Σ-accessors
  // of the sharded visitor; every summed counter and timer is the exact
  // quantity the serial generator reports (worker-private during the
  // run), so the two branches fill identical fields the same way.
  stage.Restart();
  OptimizeStats& st = result.stats;
  if (sharded.has_value()) {
    st.join_plans_generated = sharded->join_plans_generated();
    st.enforcer_plans = sharded->enforcer_plans();
    st.scan_plans = sharded->scan_plans();
    st.pruned_by_pilot = sharded->pruned_by_pilot();
    for (int m = 0; m < kNumJoinMethods; ++m) {
      st.gen_seconds[m] = sharded->gen_seconds(static_cast<JoinMethod>(m));
    }
    st.save_seconds = sharded->save_seconds();
    st.init_seconds = sharded->init_seconds();
    st.enum_seconds = std::max(0.0, run_seconds - sharded->visitor_seconds());
    st.parallel_workers = par_workers;
    st.enumeration_busy_seconds = busy_seconds;
  } else {
    st.join_plans_generated = generator.join_plans_generated();
    st.enforcer_plans = generator.enforcer_plans();
    st.scan_plans = generator.scan_plans();
    st.pruned_by_pilot = generator.pruned_by_pilot();
    for (int m = 0; m < kNumJoinMethods; ++m) {
      st.gen_seconds[m] =
          generator.gen_time(static_cast<JoinMethod>(m)).TotalSeconds();
    }
    st.save_seconds = generator.save_time().TotalSeconds();
    st.init_seconds = generator.init_time().TotalSeconds();
    st.enum_seconds =
        std::max(0.0, run_seconds - generator.visitor_seconds());
  }
  st.plans_stored = memo->plans_stored();
  st.memo_entries = memo->num_entries();
  st.memo_bytes = memo->ApproxMemoryBytes();
  st.best_cost = result.best_plan->cost;
  // Stage timer stops before the total snapshot; see PlanLow.
  stages.finalize = stage.ElapsedSeconds();
  st.total_seconds = watch.ElapsedSeconds();
  Notify(CompileStage::kFinalize, stages.finalize, /*estimate_mode=*/false);
  // The finalize fault fires before the run is recorded, so a failed
  // compile never counts as a completed one.
  if (Status fault = ConsultFaultPoint(kFaultPlanFinalize, &graph);
      !fault.ok()) {
    ctx_->AbandonBinding();
    return fault;
  }
  ctx_->stats().RecordStages(stages);
  ++ctx_->stats().plans_compiled;
  return result;
}

StatusOr<OptimizeResult> CompilationPipeline::DegradeToGreedy(
    const QueryGraph& graph, StopWatch& watch, StageSeconds* stages,
    OptimizeResult* result) {
  ResourceBudget& budget = ctx_->budget();
  StopWatch stage;

  // Greedy fallback, charged to the enumerate stage (it replaces the cut
  // enumeration): a fresh memo, because the partial DP memo may have been
  // abandoned mid-entry and its plans must not leak into the result.
  result->memo = ctx_->NewMemo();
  GreedyOptimizer greedy(graph, ctx_->cost_model(),
                         ctx_->refined_cardinality(), result->memo.get());
  result->best_plan = greedy.Run();
  stages->enumerate += stage.ElapsedSeconds();
  if (result->best_plan == nullptr) {
    ctx_->AbandonBinding();
    return Status::Internal("greedy fallback produced no plan");
  }

  // ---- Complete: skipped, exactly as in every kLow compile (single
  // plan, no enforcers) — so no kComplete stage event fires either.

  // ---- Finalize: stats in kLow shape (the DP counters would describe
  // the abandoned partial run, not the returned plan), except the
  // enumeration counters, which faithfully cover the prefix that ran.
  stage.Restart();
  result->degraded = true;
  result->tripped_limit = budget.tripped_limit();
  result->degraded_stage = CompileStage::kEnumerate;
  result->stats.best_cost = result->best_plan->cost;
  result->stats.plans_stored = 0;
  stages->finalize = stage.ElapsedSeconds();
  result->stats.total_seconds = watch.ElapsedSeconds();
  Notify(CompileStage::kFinalize, stages->finalize, /*estimate_mode=*/false);
  ctx_->stats().RecordStages(*stages);
  ++ctx_->stats().plans_compiled;
  ++ctx_->stats().degraded_runs;
  // Drop the binding: the next compile — any query, this session — starts
  // cold and produces bit-identical output to a fresh session's.
  ctx_->AbandonBinding();
  return std::move(*result);
}

CompileTimeEstimate CompilationPipeline::CompileEstimate(
    const QueryGraph& graph, const TimeModel& time_model) {
  return EstimateImpl(graph, time_model, nullptr);
}

CompileTimeEstimate CompilationPipeline::CompileEstimate(
    const QueryGraph& graph, const TimeModel& time_model,
    const ResourceLimits& limits) {
  return EstimateImpl(graph, time_model, &limits);
}

CompileTimeEstimate CompilationPipeline::EstimateImpl(
    const QueryGraph& graph, const TimeModel& time_model,
    const ResourceLimits* limits) {
  StopWatch watch;
  StageSeconds stages;
  StopWatch stage;
  CompileTimeEstimate out;

  ResourceBudget& budget = ctx_->budget();
  budget.Disarm();
  if (limits != nullptr) budget.Arm(*limits);
  ResourceBudget* armed = budget.armed() ? &budget : nullptr;

  // ---- Bind: warm when the same query was just estimated (no heap
  // traffic past the first estimate — the session alloc test's subject).
  // No fault points in estimate mode: CompileEstimate has no Status
  // channel, and inventing one for injection would govern the tail
  // wagging the dog.
  ctx_->Reset(graph);
  PlanCounter& counter = ctx_->counter();
  counter.ResetCounts();
  stages.bind = stage.ElapsedSeconds();
  Notify(CompileStage::kBind, stages.bind, /*estimate_mode=*/true);

  // ---- Enumerate (plan-counting visitor — §3.1's other half). The
  // counter charges each counted plan while armed. With
  // parallel_workers > 1 and an eligible query the rank-parallel
  // enumerator counts through per-worker shard counters (adopted into
  // `counter` at every rank barrier, so the merged counts and entry
  // states are bit-identical to serial); otherwise the exact serial path.
  stage.Restart();
  const int par_workers = ctx_->EffectiveParallelWorkers();
  counter.set_budget(armed);
  if (par_workers > 1) {
    ShardedPlanCounting sharded(ctx_, par_workers);
    ParallelEnumerationResult par = ctx_->parallel_enumerator().Run(
        graph, ctx_->options().enumeration, &sharded, armed);
    out.enumeration = par.stats;
    out.parallel_workers = par_workers;
    out.enumeration_busy_seconds = par.busy_seconds;
  } else {
    out.enumeration = ctx_->Enumerate(&counter, armed);
  }
  counter.set_budget(nullptr);
  stages.enumerate = stage.ElapsedSeconds();
  Notify(CompileStage::kEnumerate, stages.enumerate, /*estimate_mode=*/true);

  const bool tripped = armed != nullptr && armed->tripped();
  if (!tripped) {
    // ---- Complete, counted: what plan mode's completion stage would add.
    // A tripped run skips it (and its stage event), mirroring plan mode's
    // degraded path.
    stage.Restart();
    out.completion_plans = CountCompletionPlans(graph);
    stages.complete = stage.ElapsedSeconds();
    Notify(CompileStage::kComplete, stages.complete, /*estimate_mode=*/true);
  }

  // ---- Finalize: counts → seconds via the §3.5 time model. For a
  // tripped run the counts cover only the enumeration prefix, so the
  // derived seconds/bytes are lower bounds — flagged by `degraded`.
  stage.Restart();
  out.plan_estimates = counter.estimated_plans();
  out.estimated_seconds = time_model.EstimateSeconds(out.plan_estimates);
  out.plan_slots = counter.TotalPlanSlots();
  out.estimated_memo_bytes = out.plan_slots * CompileTimeEstimate::kBytesPerPlan;
  if (tripped) {
    out.degraded = true;
    out.tripped_limit = budget.tripped_limit();
    out.degraded_stage = CompileStage::kEnumerate;
  }
  // Stage timer stops before the total snapshot; see PlanLow.
  stages.finalize = stage.ElapsedSeconds();
  out.estimation_seconds = watch.ElapsedSeconds();
  Notify(CompileStage::kFinalize, stages.finalize, /*estimate_mode=*/true);
  ctx_->stats().RecordStages(stages);
  ++ctx_->stats().estimates_run;
  if (tripped) {
    ++ctx_->stats().degraded_runs;
    // The counter's entry state covers a cut-off run; abandoning the
    // binding forces a cold rebuild so the next estimate (same query or
    // not) matches a fresh session bit for bit.
    ctx_->AbandonBinding();
  }
  return out;
}

void CompilationPipeline::Notify(CompileStage stage, double seconds,
                                 bool estimate_mode) {
  if (observer_ == nullptr) return;
  const ResourceBudget& budget = ctx_->budget();
  StageEvent event;
  event.stage = stage;
  event.seconds = seconds;
  event.estimate_mode = estimate_mode;
  event.budget_tripped = budget.tripped();
  event.tripped_limit = budget.tripped_limit();
  observer_(observer_ctx_, event);
}

}  // namespace cote
