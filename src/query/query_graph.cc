#include "query/query_graph.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace cote {

int QueryGraph::AddTableRef(const Table* table, std::string alias) {
  // Always-on: TableSet supports at most 64 table refs, and every bitmask
  // downstream (adjacency, MEMO index, enumeration) relies on it.
  COTE_CHECK(table != nullptr);
  COTE_CHECK_LT(num_tables(), 64);
  QueryTableRef ref;
  ref.table = table;
  ref.alias = alias.empty() ? table->name() : std::move(alias);
  tables_.push_back(std::move(ref));
  global_equiv_valid_.Store(false);
  adj_valid_.Store(false);
  return num_tables() - 1;
}

void QueryGraph::EnsureAdjacency() const {
  if (adj_valid_.Load()) return;
  // Cold cache: build under the graph's mutex so concurrent const readers
  // (e.g. pool workers compiling the same graph) serialize here once.
  MutexLock lock(cache_mu_.mu);
  if (adj_valid_.Load()) return;
  const int n = num_tables();
  const int num_preds = static_cast<int>(join_preds_.size());
  adj_.adj.assign(static_cast<size_t>(n), 0);
  adj_.pair_offset.assign(static_cast<size_t>(n) * n + 1, 0);
  adj_.pair_preds.assign(static_cast<size_t>(num_preds), 0);
  adj_.inner_only_mask = 0;
  adj_.outer_pred_indices.clear();

  for (int t = 0; t < n; ++t) {
    if (tables_[t].inner_only) adj_.inner_only_mask |= BitAt(t);
  }
  // Counting pass, then prefix sums, then a stable fill — predicate
  // indices stay ascending within each table pair because the fill scans
  // the predicate list in order.
  for (int i = 0; i < num_preds; ++i) {
    const JoinPredicate& p = join_preds_[i];
    int a = p.left.table, b = p.right.table;
    // Predicates referencing tables outside the FROM list would corrupt
    // the CSR layout; catch them here, once, when the cache is built.
    COTE_CHECK(a >= 0 && a < n);
    COTE_CHECK(b >= 0 && b < n);
    COTE_CHECK_NE(a, b);
    adj_.adj[a] |= BitAt(b);
    adj_.adj[b] |= BitAt(a);
    ++adj_.pair_offset[PairKey(a, b) + 1];
    if (p.kind == JoinKind::kLeftOuter) adj_.outer_pred_indices.push_back(i);
  }
  for (size_t k = 1; k < adj_.pair_offset.size(); ++k) {
    adj_.pair_offset[k] += adj_.pair_offset[k - 1];
  }
  std::vector<int32_t> cursor(adj_.pair_offset.begin(),
                              adj_.pair_offset.end() - 1);
  for (int i = 0; i < num_preds; ++i) {
    const JoinPredicate& p = join_preds_[i];
    adj_.pair_preds[cursor[PairKey(p.left.table, p.right.table)]++] = i;
  }
  adj_valid_.Store(true);
}

double QueryGraph::ColumnNdv(ColumnRef c) const {
  const Table* t = tables_[c.table].table;
  return t->column(c.column).ndv;
}

std::string QueryGraph::ColumnName(ColumnRef c) const {
  const QueryTableRef& ref = tables_[c.table];
  return ref.alias + "." + ref.table->column(c.column).name;
}

std::vector<int> QueryGraph::ConnectingPredicates(TableSet s,
                                                  TableSet l) const {
  std::vector<int> out;
  ConnectingPredicates(s, l, &out);
  return out;
}

void QueryGraph::ConnectingPredicates(TableSet s, TableSet l,
                                      std::vector<int>* out) const {
  out->clear();
  if (s.Overlaps(l)) {
    // Degenerate (never hit by the enumerator, whose splits are disjoint):
    // keep the original cut semantics with a direct scan.
    for (size_t i = 0; i < join_preds_.size(); ++i) {
      const JoinPredicate& p = join_preds_[i];
      bool ls = s.Contains(p.left.table), rs = s.Contains(p.right.table);
      bool ll = l.Contains(p.left.table), rl = l.Contains(p.right.table);
      if ((ls && rl) || (rs && ll)) out->push_back(static_cast<int>(i));
    }
    return;
  }
  EnsureAdjacency();
  const AdjacencyCache& adj = adjacency();
  const uint64_t lbits = l.bits();
  for (int a : s) {
    for (int b : TableSet(adj.adj[a] & lbits)) {
      const int key = PairKey(a, b);
      for (int32_t i = adj.pair_offset[key]; i < adj.pair_offset[key + 1];
           ++i) {
        out->push_back(adj.pair_preds[i]);
      }
    }
  }
  // Ascending predicate order is part of the contract (merge-candidate
  // construction depends on it); crossing lists are tiny, so this sort is
  // effectively a couple of swaps.
  std::sort(out->begin(), out->end());
}

void QueryGraph::InternalPredicates(TableSet s, std::vector<int>* out) const {
  EnsureAdjacency();
  const AdjacencyCache& adj = adjacency();
  out->clear();
  const uint64_t sbits = s.bits();
  for (int a : s) {
    // Only pairs (a, b) with a < b, so each internal edge is seen once.
    uint64_t higher = adj.adj[a] & sbits & ~((uint64_t{2} << a) - 1);
    for (int b : TableSet(higher)) {
      const int key = PairKey(a, b);
      for (int32_t i = adj.pair_offset[key]; i < adj.pair_offset[key + 1];
           ++i) {
        out->push_back(adj.pair_preds[i]);
      }
    }
  }
  std::sort(out->begin(), out->end());
}

bool QueryGraph::AreConnected(TableSet s, TableSet l) const {
  EnsureAdjacency();
  const AdjacencyCache& adj = adjacency();
  const uint64_t lbits = l.bits();
  for (int a : s) {
    if ((adj.adj[a] & lbits) != 0) return true;
  }
  return false;
}

bool QueryGraph::IsSubgraphConnected(TableSet s) const {
  if (s.size() <= 1) return !s.empty();
  EnsureAdjacency();
  const AdjacencyCache& adj = adjacency();
  const uint64_t sbits = s.bits();
  uint64_t reached = sbits & (~sbits + 1);  // lowest table of the set
  uint64_t frontier = reached;
  while (frontier != 0) {
    uint64_t next = 0;
    for (int t : TableSet(frontier)) next |= adj.adj[t];
    next &= sbits & ~reached;
    reached |= next;
    frontier = next;
  }
  return reached == sbits;
}

TableSet QueryGraph::Neighbors(TableSet s) const {
  EnsureAdjacency();
  const AdjacencyCache& adj = adjacency();
  uint64_t out = 0;
  for (int a : s) out |= adj.adj[a];
  return TableSet(out & ~s.bits());
}

double QueryGraph::LocalSelectivity(int t) const {
  double sel = 1.0;
  for (const LocalPredicate& p : local_preds_) {
    if (p.column.table == t) sel *= p.selectivity;
  }
  return sel;
}

const ColumnEquivalence& QueryGraph::GlobalEquivalence() const {
  if (global_equiv_valid_.Load()) return global_equiv_cache();
  {
    MutexLock lock(cache_mu_.mu);
    if (!global_equiv_valid_.Load()) {
      global_equiv_ = ColumnEquivalence();
      for (const JoinPredicate& p : join_preds_) {
        if (p.kind == JoinKind::kInner) {
          global_equiv_.AddEquivalence(p.left, p.right);
        }
      }
      // Flattened so warm Find() lookups never path-halve — the shared
      // instance stays write-free under concurrent readers.
      global_equiv_.Flatten();
      global_equiv_valid_.Store(true);
    }
  }
  return global_equiv_cache();
}

int QueryGraph::DeriveTransitiveClosure() {
  // Only inner-join predicates participate: equality does not transit
  // through the null-producing side of an outer join.
  ColumnEquivalence equiv;
  for (const JoinPredicate& p : join_preds_) {
    if (p.kind == JoinKind::kInner) equiv.AddEquivalence(p.left, p.right);
  }
  int added = 0;
  for (const auto& cls : equiv.Classes()) {
    for (size_t i = 0; i < cls.size(); ++i) {
      for (size_t j = i + 1; j < cls.size(); ++j) {
        ColumnRef a = cls[i], b = cls[j];
        if (a.table == b.table) continue;  // no self-joins from closure
        bool exists = false;
        for (const JoinPredicate& p : join_preds_) {
          if ((p.left == a && p.right == b) || (p.left == b && p.right == a)) {
            exists = true;
            break;
          }
        }
        if (exists) continue;
        JoinPredicate np;
        np.left = a;
        np.right = b;
        np.kind = JoinKind::kInner;
        np.derived = true;
        np.selectivity = 1.0 / std::max({ColumnNdv(a), ColumnNdv(b), 1.0});
        join_preds_.push_back(np);
        ++added;
      }
    }
  }
  if (added > 0) {
    global_equiv_valid_.Store(false);
    // The new derived predicates are join edges too: the adjacency CSR
    // must pick them up (it previously went stale here).
    adj_valid_.Store(false);
  }
  return added;
}

bool QueryGraph::OuterEnabled(TableSet s) const {
  EnsureAdjacency();
  const AdjacencyCache& adj = adjacency();
  if ((adj.inner_only_mask & s.bits()) != 0 && s != AllTables()) {
    return false;
  }
  for (int pi : adj.outer_pred_indices) {
    const JoinPredicate& p = join_preds_[pi];
    // The null-producing side may not lead a join until its preserved
    // partner has been joined in.
    if (s.Contains(p.right.table) && !s.Contains(p.left.table)) return false;
  }
  return true;
}

bool QueryGraph::OuterJoinOrientationOk(TableSet s, TableSet l) const {
  EnsureAdjacency();
  for (int pi : adjacency().outer_pred_indices) {
    const JoinPredicate& p = join_preds_[pi];
    bool preserved_in_s = s.Contains(p.left.table);
    bool null_in_l = l.Contains(p.right.table);
    bool preserved_in_l = l.Contains(p.left.table);
    bool null_in_s = s.Contains(p.right.table);
    // If the predicate crosses the cut, the null-producing table must be in
    // the inner input `l`.
    if (preserved_in_s && null_in_s) continue;
    if (preserved_in_l && null_in_l) continue;
    if (preserved_in_s && null_in_l) continue;       // correct orientation
    if (preserved_in_l && null_in_s) return false;   // reversed: illegal
  }
  return true;
}

std::string QueryGraph::ToString() const {
  std::vector<std::string> parts;
  for (int i = 0; i < num_tables(); ++i) {
    parts.push_back(StrFormat("t%d=%s(%s)", i, tables_[i].alias.c_str(),
                              tables_[i].table->name().c_str()));
  }
  std::string out = "tables: " + Join(parts, ", ") + "\n";
  parts.clear();
  for (const JoinPredicate& p : join_preds_) parts.push_back(p.ToString());
  out += "joins: " + Join(parts, "; ") + "\n";
  parts.clear();
  for (const LocalPredicate& p : local_preds_) parts.push_back(p.ToString());
  out += "locals: " + Join(parts, "; ");
  return out;
}

}  // namespace cote
