#include "query/query_graph.h"

#include <algorithm>
#include <cassert>

#include "common/str_util.h"

namespace cote {

int QueryGraph::AddTableRef(const Table* table, std::string alias) {
  assert(table != nullptr);
  assert(num_tables() < 64 && "TableSet supports at most 64 table refs");
  QueryTableRef ref;
  ref.table = table;
  ref.alias = alias.empty() ? table->name() : std::move(alias);
  tables_.push_back(std::move(ref));
  global_equiv_valid_ = false;
  return num_tables() - 1;
}

double QueryGraph::ColumnNdv(ColumnRef c) const {
  const Table* t = tables_[c.table].table;
  return t->column(c.column).ndv;
}

std::string QueryGraph::ColumnName(ColumnRef c) const {
  const QueryTableRef& ref = tables_[c.table];
  return ref.alias + "." + ref.table->column(c.column).name;
}

std::vector<int> QueryGraph::ConnectingPredicates(TableSet s,
                                                  TableSet l) const {
  std::vector<int> out;
  for (size_t i = 0; i < join_preds_.size(); ++i) {
    const JoinPredicate& p = join_preds_[i];
    bool ls = s.Contains(p.left.table), rs = s.Contains(p.right.table);
    bool ll = l.Contains(p.left.table), rl = l.Contains(p.right.table);
    if ((ls && rl) || (rs && ll)) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool QueryGraph::AreConnected(TableSet s, TableSet l) const {
  for (const JoinPredicate& p : join_preds_) {
    bool ls = s.Contains(p.left.table), rs = s.Contains(p.right.table);
    bool ll = l.Contains(p.left.table), rl = l.Contains(p.right.table);
    if ((ls && rl) || (rs && ll)) return true;
  }
  return false;
}

bool QueryGraph::IsSubgraphConnected(TableSet s) const {
  if (s.size() <= 1) return !s.empty();
  TableSet reached = TableSet::Single(s.First());
  bool grew = true;
  while (grew && reached != s) {
    grew = false;
    for (const JoinPredicate& p : join_preds_) {
      int a = p.left.table, b = p.right.table;
      if (!s.Contains(a) || !s.Contains(b)) continue;
      if (reached.Contains(a) && !reached.Contains(b)) {
        reached = reached.With(b);
        grew = true;
      } else if (reached.Contains(b) && !reached.Contains(a)) {
        reached = reached.With(a);
        grew = true;
      }
    }
  }
  return reached == s;
}

TableSet QueryGraph::Neighbors(TableSet s) const {
  TableSet out;
  for (const JoinPredicate& p : join_preds_) {
    bool ls = s.Contains(p.left.table), rs = s.Contains(p.right.table);
    if (ls && !rs) out = out.With(p.right.table);
    if (rs && !ls) out = out.With(p.left.table);
  }
  return out;
}

double QueryGraph::LocalSelectivity(int t) const {
  double sel = 1.0;
  for (const LocalPredicate& p : local_preds_) {
    if (p.column.table == t) sel *= p.selectivity;
  }
  return sel;
}

const ColumnEquivalence& QueryGraph::GlobalEquivalence() const {
  if (!global_equiv_valid_) {
    global_equiv_ = ColumnEquivalence();
    for (const JoinPredicate& p : join_preds_) {
      if (p.kind == JoinKind::kInner) {
        global_equiv_.AddEquivalence(p.left, p.right);
      }
    }
    global_equiv_valid_ = true;
  }
  return global_equiv_;
}

int QueryGraph::DeriveTransitiveClosure() {
  // Only inner-join predicates participate: equality does not transit
  // through the null-producing side of an outer join.
  ColumnEquivalence equiv;
  for (const JoinPredicate& p : join_preds_) {
    if (p.kind == JoinKind::kInner) equiv.AddEquivalence(p.left, p.right);
  }
  int added = 0;
  for (const auto& cls : equiv.Classes()) {
    for (size_t i = 0; i < cls.size(); ++i) {
      for (size_t j = i + 1; j < cls.size(); ++j) {
        ColumnRef a = cls[i], b = cls[j];
        if (a.table == b.table) continue;  // no self-joins from closure
        bool exists = false;
        for (const JoinPredicate& p : join_preds_) {
          if ((p.left == a && p.right == b) || (p.left == b && p.right == a)) {
            exists = true;
            break;
          }
        }
        if (exists) continue;
        JoinPredicate np;
        np.left = a;
        np.right = b;
        np.kind = JoinKind::kInner;
        np.derived = true;
        np.selectivity = 1.0 / std::max({ColumnNdv(a), ColumnNdv(b), 1.0});
        join_preds_.push_back(np);
        ++added;
      }
    }
  }
  if (added > 0) global_equiv_valid_ = false;
  return added;
}

bool QueryGraph::OuterEnabled(TableSet s) const {
  bool full_query = (s == AllTables());
  for (int t : s) {
    if (tables_[t].inner_only && !full_query) return false;
  }
  for (const JoinPredicate& p : join_preds_) {
    if (p.kind != JoinKind::kLeftOuter) continue;
    // The null-producing side may not lead a join until its preserved
    // partner has been joined in.
    if (s.Contains(p.right.table) && !s.Contains(p.left.table)) return false;
  }
  return true;
}

bool QueryGraph::OuterJoinOrientationOk(TableSet s, TableSet l) const {
  for (const JoinPredicate& p : join_preds_) {
    if (p.kind != JoinKind::kLeftOuter) continue;
    bool preserved_in_s = s.Contains(p.left.table);
    bool null_in_l = l.Contains(p.right.table);
    bool preserved_in_l = l.Contains(p.left.table);
    bool null_in_s = s.Contains(p.right.table);
    // If the predicate crosses the cut, the null-producing table must be in
    // the inner input `l`.
    if (preserved_in_s && null_in_s) continue;
    if (preserved_in_l && null_in_l) continue;
    if (preserved_in_s && null_in_l) continue;       // correct orientation
    if (preserved_in_l && null_in_s) return false;   // reversed: illegal
  }
  return true;
}

std::string QueryGraph::ToString() const {
  std::vector<std::string> parts;
  for (int i = 0; i < num_tables(); ++i) {
    parts.push_back(StrFormat("t%d=%s(%s)", i, tables_[i].alias.c_str(),
                              tables_[i].table->name().c_str()));
  }
  std::string out = "tables: " + Join(parts, ", ") + "\n";
  parts.clear();
  for (const JoinPredicate& p : join_preds_) parts.push_back(p.ToString());
  out += "joins: " + Join(parts, "; ") + "\n";
  parts.clear();
  for (const LocalPredicate& p : local_preds_) parts.push_back(p.ToString());
  out += "locals: " + Join(parts, "; ");
  return out;
}

}  // namespace cote
