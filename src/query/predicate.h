#ifndef COTE_QUERY_PREDICATE_H_
#define COTE_QUERY_PREDICATE_H_

#include <string>

#include "query/column_ref.h"

namespace cote {

/// Join semantics of an edge in the join graph.
enum class JoinKind {
  kInner,
  /// LEFT OUTER JOIN: `left` belongs to the preserved side, `right` to the
  /// null-producing side. Restricts which table sets may act as the outer
  /// input during enumeration (the paper's §4 item 3).
  kLeftOuter,
};

/// \brief An equi-join predicate `left = right` between two table refs.
struct JoinPredicate {
  ColumnRef left;
  ColumnRef right;
  JoinKind kind = JoinKind::kInner;
  /// True if derived by transitive closure rather than written by the user.
  /// Derived predicates are what create cycles in real join graphs (§2.2).
  bool derived = false;
  /// Estimated selectivity, typically 1/max(ndv(left), ndv(right)).
  double selectivity = 0.1;

  /// The side of the predicate inside table ref `t`, or invalid.
  ColumnRef SideIn(int t) const {
    if (left.table == t) return left;
    if (right.table == t) return right;
    return ColumnRef();
  }

  bool Connects(int t1, int t2) const {
    return (left.table == t1 && right.table == t2) ||
           (left.table == t2 && right.table == t1);
  }

  std::string ToString() const {
    std::string s = left.ToString() + " = " + right.ToString();
    if (kind == JoinKind::kLeftOuter) s += " [left-outer]";
    if (derived) s += " [derived]";
    return s;
  }
};

/// Comparison operator of a local (single-table) predicate.
enum class LocalOp {
  kEq,     ///< column = literal
  kRange,  ///< column </<=/>/>=/BETWEEN literal(s)
  kLike,   ///< column LIKE pattern
};

/// \brief A single-table filter predicate with its estimated selectivity.
struct LocalPredicate {
  ColumnRef column;
  LocalOp op = LocalOp::kEq;
  double selectivity = 0.1;

  std::string ToString() const {
    const char* op_name = op == LocalOp::kEq     ? "="
                          : op == LocalOp::kRange ? "range"
                                                  : "like";
    return column.ToString() + " " + op_name + " ?";
  }
};

}  // namespace cote

#endif  // COTE_QUERY_PREDICATE_H_
