#ifndef COTE_QUERY_EQUIVALENCE_H_
#define COTE_QUERY_EQUIVALENCE_H_

#include <unordered_map>
#include <vector>

#include "query/column_ref.h"

namespace cote {

/// \brief Union-find over columns, built from applied equi-join predicates.
///
/// Join predicates make columns equivalent: after applying `R.a = S.a`, an
/// order on `R.a` and an order on `S.a` denote the same physical property.
/// The optimizer builds one instance per MEMO entry (from the predicates
/// applied within that entry's table set) and canonicalizes property columns
/// through it; the paper notes that "equivalence needs to be checked for
/// each enumerated join" (§3.3).
class ColumnEquivalence {
 public:
  ColumnEquivalence() = default;

  /// Declares a ~ b.
  void AddEquivalence(ColumnRef a, ColumnRef b);

  /// Canonical representative of c's class (the minimum-encoded member).
  /// Columns never added are their own representative.
  ColumnRef Find(ColumnRef c) const;

  bool Equivalent(ColumnRef a, ColumnRef b) const {
    return Find(a) == Find(b);
  }

  /// All classes with at least two members, each sorted ascending.
  std::vector<std::vector<ColumnRef>> Classes() const;

  /// Points every member directly at its root. After flattening (and until
  /// the next AddEquivalence) Find/Root are pure reads — path halving never
  /// fires — so a flattened instance may be shared across threads. Called
  /// on the query graph's global equivalence when its lazy build completes.
  void Flatten();

  /// Forgets every equivalence. Bucket storage is retained, so an instance
  /// embedded in reusable per-entry state can be cleared on a session
  /// rebind without churning the allocator on the next build-up.
  void Clear() { parent_.clear(); }

 private:
  uint32_t Root(uint32_t x) const;

  // parent_[x] == x for roots. Roots are maintained as the class minimum so
  // Find() is canonical without a second pass.
  mutable std::unordered_map<uint32_t, uint32_t> parent_;
};

}  // namespace cote

#endif  // COTE_QUERY_EQUIVALENCE_H_
