#include "query/equivalence.h"

#include <algorithm>
#include <map>

namespace cote {

uint32_t ColumnEquivalence::Root(uint32_t x) const {
  auto it = parent_.find(x);
  if (it == parent_.end()) return x;
  // Path halving.
  while (it->second != x) {
    auto up = parent_.find(it->second);
    if (up == parent_.end() || up->second == it->second) {
      return it->second;
    }
    it->second = up->second;
    x = up->second;
    it = parent_.find(x);
    if (it == parent_.end()) return x;
  }
  return x;
}

void ColumnEquivalence::AddEquivalence(ColumnRef a, ColumnRef b) {
  uint32_t ka = a.Encode(), kb = b.Encode();
  // Probe before emplace: libstdc++'s unordered_map::emplace allocates the
  // node before checking for a duplicate key, and this runs once per
  // internal predicate per MEMO entry on the estimate-mode hot path.
  // hotpath-ok: guarded insert — fires only the first time a key is seen
  if (parent_.find(ka) == parent_.end()) parent_.emplace(ka, ka);
  // hotpath-ok: guarded insert — fires only the first time a key is seen
  if (parent_.find(kb) == parent_.end()) parent_.emplace(kb, kb);
  uint32_t ra = Root(ka), rb = Root(kb);
  if (ra == rb) return;
  // Keep the minimum encoding as the root so Find() is canonical.
  uint32_t lo = std::min(ra, rb), hi = std::max(ra, rb);
  parent_[hi] = lo;
}

void ColumnEquivalence::Flatten() {
  // Root() only path-halves entries it traverses; it never inserts or
  // erases, so mutating values while iterating is safe.
  for (auto& [key, parent] : parent_) parent = Root(key);
}

ColumnRef ColumnEquivalence::Find(ColumnRef c) const {
  uint32_t r = Root(c.Encode());
  return ColumnRef(static_cast<int>(r >> 16), static_cast<int>(r & 0xffff));
}

std::vector<std::vector<ColumnRef>> ColumnEquivalence::Classes() const {
  std::map<uint32_t, std::vector<ColumnRef>> by_root;
  for (const auto& [key, unused] : parent_) {
    (void)unused;
    ColumnRef c(static_cast<int>(key >> 16), static_cast<int>(key & 0xffff));
    by_root[Root(key)].push_back(c);
  }
  std::vector<std::vector<ColumnRef>> out;
  for (auto& [root, members] : by_root) {
    (void)root;
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  return out;
}

}  // namespace cote
