#ifndef COTE_QUERY_QUERY_BUILDER_H_
#define COTE_QUERY_QUERY_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query_graph.h"

namespace cote {

/// \brief Programmatic QueryGraph construction by table/column names.
///
/// Used by the workload generators and by tests; the SQL binder offers the
/// same result from SQL text. All methods record errors internally; the
/// first error is reported by Build().
///
///   QueryBuilder qb(catalog);
///   qb.AddTable("orders", "o").AddTable("customer", "c");
///   qb.Join("o", "o_custkey", "c", "c_custkey");
///   qb.Local("o", "o_orderdate", LocalOp::kRange, 0.3);
///   qb.OrderBy({{"c", "c_name"}});
///   StatusOr<QueryGraph> g = qb.Build();
class QueryBuilder {
 public:
  explicit QueryBuilder(const Catalog& catalog) : catalog_(catalog) {}

  QueryBuilder& AddTable(const std::string& table_name,
                         const std::string& alias = "");

  QueryBuilder& Join(const std::string& alias1, const std::string& col1,
                     const std::string& alias2, const std::string& col2,
                     JoinKind kind = JoinKind::kInner);

  QueryBuilder& Local(const std::string& alias, const std::string& col,
                      LocalOp op = LocalOp::kEq, double selectivity = 0.1);

  QueryBuilder& OrderBy(
      const std::vector<std::pair<std::string, std::string>>& cols);
  QueryBuilder& GroupBy(
      const std::vector<std::pair<std::string, std::string>>& cols);

  QueryBuilder& InnerOnly(const std::string& alias);

  /// Adds the implied predicates from transitive closure after all explicit
  /// joins (call before Build if desired; Build does NOT do it implicitly).
  QueryBuilder& WithTransitiveClosure();

  StatusOr<QueryGraph> Build();

 private:
  StatusOr<ColumnRef> ResolveColumn(const std::string& alias,
                                    const std::string& col);

  const Catalog& catalog_;
  QueryGraph graph_;
  std::unordered_map<std::string, int> alias_to_ref_;
  bool transitive_closure_ = false;
  Status first_error_;
};

}  // namespace cote

#endif  // COTE_QUERY_QUERY_BUILDER_H_
