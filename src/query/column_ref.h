#ifndef COTE_QUERY_COLUMN_REF_H_
#define COTE_QUERY_COLUMN_REF_H_

#include <cstdint>
#include <functional>
#include <string>

namespace cote {

/// \brief A column of a specific table *reference* in a query.
///
/// `table` is the 0-based position of the table reference in the query's
/// FROM list (NOT a catalog id: the same catalog table may appear several
/// times under different aliases); `column` is the column ordinal within
/// that table. ColumnRefs are the atoms from which physical properties
/// (orders, partitions) are built, so they are kept small and hashable.
struct ColumnRef {
  int16_t table = -1;
  int16_t column = -1;

  ColumnRef() = default;
  ColumnRef(int table_ref, int column_ordinal)
      : table(static_cast<int16_t>(table_ref)),
        column(static_cast<int16_t>(column_ordinal)) {}

  bool valid() const { return table >= 0 && column >= 0; }

  /// Dense 32-bit encoding; usable as a map key and as a canonical order.
  uint32_t Encode() const {
    return (static_cast<uint32_t>(static_cast<uint16_t>(table)) << 16) |
           static_cast<uint16_t>(column);
  }

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
  bool operator!=(const ColumnRef& o) const { return !(*this == o); }
  bool operator<(const ColumnRef& o) const { return Encode() < o.Encode(); }

  /// Debug rendering like "t2.c5".
  std::string ToString() const {
    return "t" + std::to_string(table) + ".c" + std::to_string(column);
  }
};

struct ColumnRefHash {
  size_t operator()(const ColumnRef& c) const {
    return std::hash<uint32_t>()(c.Encode());
  }
};

}  // namespace cote

#endif  // COTE_QUERY_COLUMN_REF_H_
