#include "query/query_builder.h"

#include <algorithm>

namespace cote {

QueryBuilder& QueryBuilder::AddTable(const std::string& table_name,
                                     const std::string& alias) {
  if (!first_error_.ok()) return *this;
  const Table* t = catalog_.FindTable(table_name);
  if (t == nullptr) {
    first_error_ = Status::NotFound("table " + table_name);
    return *this;
  }
  std::string a = alias.empty() ? table_name : alias;
  if (alias_to_ref_.count(a) > 0) {
    first_error_ = Status::AlreadyExists("alias " + a);
    return *this;
  }
  int ref = graph_.AddTableRef(t, a);
  alias_to_ref_[a] = ref;
  return *this;
}

StatusOr<ColumnRef> QueryBuilder::ResolveColumn(const std::string& alias,
                                                const std::string& col) {
  auto it = alias_to_ref_.find(alias);
  if (it == alias_to_ref_.end()) {
    return Status::NotFound("alias " + alias);
  }
  int ref = it->second;
  int ord = graph_.table_ref(ref).table->FindColumn(col);
  if (ord < 0) {
    return Status::NotFound("column " + alias + "." + col);
  }
  return ColumnRef(ref, ord);
}

QueryBuilder& QueryBuilder::Join(const std::string& alias1,
                                 const std::string& col1,
                                 const std::string& alias2,
                                 const std::string& col2, JoinKind kind) {
  if (!first_error_.ok()) return *this;
  auto a = ResolveColumn(alias1, col1);
  auto b = ResolveColumn(alias2, col2);
  if (!a.ok()) {
    first_error_ = a.status();
    return *this;
  }
  if (!b.ok()) {
    first_error_ = b.status();
    return *this;
  }
  JoinPredicate p;
  p.left = *a;
  p.right = *b;
  p.kind = kind;
  p.selectivity =
      1.0 / std::max({graph_.ColumnNdv(*a), graph_.ColumnNdv(*b), 1.0});
  graph_.AddJoinPredicate(p);
  return *this;
}

QueryBuilder& QueryBuilder::Local(const std::string& alias,
                                  const std::string& col, LocalOp op,
                                  double selectivity) {
  if (!first_error_.ok()) return *this;
  auto c = ResolveColumn(alias, col);
  if (!c.ok()) {
    first_error_ = c.status();
    return *this;
  }
  LocalPredicate p;
  p.column = *c;
  p.op = op;
  p.selectivity = selectivity;
  graph_.AddLocalPredicate(p);
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(
    const std::vector<std::pair<std::string, std::string>>& cols) {
  if (!first_error_.ok()) return *this;
  std::vector<ColumnRef> refs;
  for (const auto& [alias, col] : cols) {
    auto c = ResolveColumn(alias, col);
    if (!c.ok()) {
      first_error_ = c.status();
      return *this;
    }
    refs.push_back(*c);
  }
  graph_.SetOrderBy(std::move(refs));
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(
    const std::vector<std::pair<std::string, std::string>>& cols) {
  if (!first_error_.ok()) return *this;
  std::vector<ColumnRef> refs;
  for (const auto& [alias, col] : cols) {
    auto c = ResolveColumn(alias, col);
    if (!c.ok()) {
      first_error_ = c.status();
      return *this;
    }
    refs.push_back(*c);
  }
  graph_.SetGroupBy(std::move(refs));
  graph_.set_has_aggregation(true);
  return *this;
}

QueryBuilder& QueryBuilder::InnerOnly(const std::string& alias) {
  if (!first_error_.ok()) return *this;
  auto it = alias_to_ref_.find(alias);
  if (it == alias_to_ref_.end()) {
    first_error_ = Status::NotFound("alias " + alias);
    return *this;
  }
  graph_.MarkInnerOnly(it->second);
  return *this;
}

QueryBuilder& QueryBuilder::WithTransitiveClosure() {
  transitive_closure_ = true;
  return *this;
}

StatusOr<QueryGraph> QueryBuilder::Build() {
  if (!first_error_.ok()) return first_error_;
  if (graph_.num_tables() == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  if (transitive_closure_) graph_.DeriveTransitiveClosure();
  return std::move(graph_);
}

}  // namespace cote
