#ifndef COTE_QUERY_MULTI_BLOCK_H_
#define COTE_QUERY_MULTI_BLOCK_H_

#include <vector>

#include "query/query_graph.h"

namespace cote {

/// \brief A query consisting of several independently optimized blocks.
///
/// Uncorrelated scalar subqueries each form their own block; the optimizer
/// compiles every block with its own MEMO, and the total compilation time
/// is (approximately) the sum over blocks — which is how the paper's
/// per-block estimation framework extends to complex queries (§3.3).
struct MultiBlockQuery {
  QueryGraph main;
  std::vector<QueryGraph> subquery_blocks;

  /// All blocks, main first. Pointers remain valid while this object
  /// lives and is not mutated.
  std::vector<const QueryGraph*> AllBlocks() const {
    std::vector<const QueryGraph*> out;
    out.push_back(&main);
    for (const QueryGraph& g : subquery_blocks) out.push_back(&g);
    return out;
  }

  int num_blocks() const {
    return 1 + static_cast<int>(subquery_blocks.size());
  }
};

}  // namespace cote

#endif  // COTE_QUERY_MULTI_BLOCK_H_
