#ifndef COTE_QUERY_QUERY_GRAPH_H_
#define COTE_QUERY_QUERY_GRAPH_H_

#include <atomic>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/mutex.h"
#include "common/table_set.h"
#include "common/thread_annotations.h"
#include "query/column_ref.h"
#include "query/equivalence.h"
#include "query/predicate.h"

namespace cote {

/// \brief One entry of a query's FROM list.
struct QueryTableRef {
  const Table* table = nullptr;
  std::string alias;
  /// True for table refs that can never serve as the outer input of a join
  /// (correlated derived tables / subquery results, §4 item 3 of the paper).
  bool inner_only = false;
};

/// \brief The bound, optimizer-facing representation of one query block.
///
/// A QueryGraph contains the FROM tables, the equi-join edges (possibly
/// cyclic, possibly outer), local filter predicates with selectivities, and
/// the ORDER BY / GROUP BY interest lists. It is produced either by the SQL
/// binder or programmatically via QueryBuilder, and consumed by both the
/// optimizer and the compilation-time estimator.
///
/// Thread safety: concurrent const access from multiple threads is safe —
/// the lazy adjacency / global-equivalence caches are built under an
/// internal per-graph mutex with double-checked atomic valid flags, and
/// the global equivalence is flattened at build so warm lookups are pure
/// reads. (A SessionPool batch may contain the same graph pointer many
/// times.) Mutating a graph while any other thread accesses it is a data
/// race, as for any container. The cache *builds* are statically checked
/// (`adj_` / `global_equiv_` are COTE_GUARDED_BY the cache mutex); the
/// warm unguarded reads go through exactly two annotated escape points
/// (adjacency() / global_equiv_cache()) whose safety argument is the
/// acquire/release CacheFlag publication, which the static analysis
/// cannot model — see DESIGN.md §13.
class QueryGraph {
 public:
  QueryGraph() = default;

  // ---- Construction -------------------------------------------------------

  /// Appends a table reference; returns its index in the FROM list.
  int AddTableRef(const Table* table, std::string alias);
  void AddJoinPredicate(JoinPredicate pred) {
    join_preds_.push_back(pred);
    adj_valid_.Store(false);
    global_equiv_valid_.Store(false);
  }
  void AddLocalPredicate(LocalPredicate pred) {
    local_preds_.push_back(pred);
  }
  void SetOrderBy(std::vector<ColumnRef> cols) { order_by_ = std::move(cols); }
  void SetGroupBy(std::vector<ColumnRef> cols) { group_by_ = std::move(cols); }
  void set_has_aggregation(bool v) { has_aggregation_ = v; }
  void set_fetch_first(int64_t n) { fetch_first_ = n; }
  void MarkInnerOnly(int table_ref) {
    tables_[table_ref].inner_only = true;
    adj_valid_.Store(false);
  }

  /// Derives implied equality predicates through transitive closure of the
  /// inner-join equivalence classes (`A.x=B.y ∧ B.y=C.z ⇒ A.x=C.z`). This is
  /// what commercial systems do and it introduces cycles into the join graph
  /// (§2.2). Returns the number of predicates added.
  int DeriveTransitiveClosure();

  // ---- Basic accessors ----------------------------------------------------

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const QueryTableRef& table_ref(int i) const { return tables_[i]; }
  TableSet AllTables() const { return TableSet::FirstN(num_tables()); }

  const std::vector<JoinPredicate>& join_predicates() const {
    return join_preds_;
  }
  const std::vector<LocalPredicate>& local_predicates() const {
    return local_preds_;
  }
  const std::vector<ColumnRef>& order_by() const { return order_by_; }
  const std::vector<ColumnRef>& group_by() const { return group_by_; }
  bool has_aggregation() const { return has_aggregation_; }
  /// FETCH FIRST n ROWS ONLY; -1 when absent. When set, the pipelinable
  /// property (paper Table 1) becomes interesting: a plan that streams its
  /// first rows without SORTs/hash builds can stop early.
  int64_t fetch_first() const { return fetch_first_; }
  bool wants_first_rows() const { return fetch_first_ > 0; }

  /// NDV of a column, from catalog statistics.
  double ColumnNdv(ColumnRef c) const;
  /// Debug name like "l.l_orderkey".
  std::string ColumnName(ColumnRef c) const;

  // ---- Join-graph queries --------------------------------------------------

  /// Indices (into join_predicates()) of predicates with one side in `s`
  /// and the other in `l`.
  std::vector<int> ConnectingPredicates(TableSet s, TableSet l) const;

  /// Allocation-free overload for the enumeration hot path: clears `*out`
  /// and fills it with the connecting predicate indices in ascending
  /// order. Uses the precomputed per-table-pair predicate lists, so the
  /// cost is proportional to |s| plus the number of crossing edges — not
  /// to the total predicate count.
  void ConnectingPredicates(TableSet s, TableSet l, std::vector<int>* out)
      const;

  /// Indices (ascending) of predicates with BOTH sides inside `s` — the
  /// predicates applied within a MEMO entry (used to derive the entry's
  /// column equivalence without scanning the whole predicate list).
  void InternalPredicates(TableSet s, std::vector<int>* out) const;

  /// True if at least one join predicate crosses the cut (s, l).
  bool AreConnected(TableSet s, TableSet l) const;

  /// True if the induced subgraph on `s` is connected (singletons are).
  bool IsSubgraphConnected(TableSet s) const;

  /// Tables outside `s` joined to some table inside `s`.
  TableSet Neighbors(TableSet s) const;

  /// Combined selectivity of all local predicates on table `t`.
  double LocalSelectivity(int t) const;

  /// Column equivalence induced by ALL inner-join predicates of the query.
  const ColumnEquivalence& GlobalEquivalence() const;

  // ---- Outer-join / eligibility --------------------------------------------

  /// Whether the table set `s` may serve as the outer input of a join:
  /// false if `s` contains the null-producing side of an outer join whose
  /// preserved side is not yet in `s`, or contains an inner-only table while
  /// not being the full query. Mirrors DB2's logical "outer enabled" mark.
  bool OuterEnabled(TableSet s) const;

  /// True if joining `s` (outer) with `l` (inner) is legal with respect to
  /// outer-join constraints: any outer-join predicate crossing the cut must
  /// have its null-producing table in `l`.
  bool OuterJoinOrientationOk(TableSet s, TableSet l) const;

  /// Debug rendering of the whole graph.
  std::string ToString() const;

 private:
  /// Precomputed join-graph adjacency (built lazily, invalidated whenever
  /// tables or predicates change). `adj[t]` is the neighbor bitmask of
  /// table t; the per-table-pair predicate indices live in a CSR layout
  /// (`pair_offset` indexes by a*n+b with a < b into `pair_preds`), so
  /// connectivity queries are bitwise operations and predicate lookups
  /// touch only the crossing pairs.
  struct AdjacencyCache {
    std::vector<uint64_t> adj;
    std::vector<int32_t> pair_offset;
    std::vector<int32_t> pair_preds;
    uint64_t inner_only_mask = 0;
    std::vector<int> outer_pred_indices;  ///< kLeftOuter predicate indices
  };
  void EnsureAdjacency() const COTE_EXCLUDES(cache_mu_.mu);
  /// Unguarded warm read of the published adjacency cache. Safe only
  /// after EnsureAdjacency() returned: the builder stores the cache
  /// fields, then release-stores adj_valid_; every path here first
  /// acquire-loaded the flag (or built under the mutex), so the read
  /// cannot observe a partial build. This publication edge is invisible
  /// to -Wthread-safety, hence the single annotated escape.
  const AdjacencyCache& adjacency() const COTE_NO_THREAD_SAFETY_ANALYSIS {
    return adj_;
  }
  /// Same escape for the flattened global equivalence (write-free after
  /// publication; see GlobalEquivalence()).
  const ColumnEquivalence& global_equiv_cache() const
      COTE_NO_THREAD_SAFETY_ANALYSIS {
    return global_equiv_;
  }
  int PairKey(int a, int b) const {
    return (a < b ? a : b) * num_tables() + (a < b ? b : a);
  }

  std::vector<QueryTableRef> tables_;
  std::vector<JoinPredicate> join_preds_;
  std::vector<LocalPredicate> local_preds_;
  std::vector<ColumnRef> order_by_;
  std::vector<ColumnRef> group_by_;
  bool has_aggregation_ = false;
  int64_t fetch_first_ = -1;

  /// Copyable atomic valid flag for a lazy cache. Acquire/release pairs
  /// with the cache build under cache_mu_, so a reader that loads true is
  /// guaranteed to see the completed cache. Copying a graph copies the
  /// flag's value (copying while another thread accesses the source is a
  /// race, like any container copy).
  struct CacheFlag {
    std::atomic<bool> v{false};
    CacheFlag() = default;
    CacheFlag(const CacheFlag& o) : v(o.Load()) {}
    CacheFlag& operator=(const CacheFlag& o) {
      Store(o.Load());
      return *this;
    }
    bool Load() const { return v.load(std::memory_order_acquire); }
    void Store(bool b) { v.store(b, std::memory_order_release); }
  };
  /// Mutex serializing lazy-cache builds. Copies get a fresh mutex.
  struct CacheMutex {
    mutable Mutex mu;
    CacheMutex() = default;
    CacheMutex(const CacheMutex&) {}
    CacheMutex& operator=(const CacheMutex&) { return *this; }
  };

  mutable ColumnEquivalence global_equiv_ COTE_GUARDED_BY(cache_mu_.mu);
  mutable CacheFlag global_equiv_valid_;
  mutable AdjacencyCache adj_ COTE_GUARDED_BY(cache_mu_.mu);
  mutable CacheFlag adj_valid_;
  mutable CacheMutex cache_mu_;
};

}  // namespace cote

#endif  // COTE_QUERY_QUERY_GRAPH_H_
