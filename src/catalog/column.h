#ifndef COTE_CATALOG_COLUMN_H_
#define COTE_CATALOG_COLUMN_H_

#include <cstdint>
#include <string>

#include "catalog/histogram.h"

namespace cote {

/// SQL column types supported by the mini catalog. The optimizer itself is
/// type-agnostic; types matter only for parsing/binding and for default
/// statistics.
enum class ColumnType {
  kInt,
  kBigInt,
  kDouble,
  kDecimal,
  kVarchar,
  kDate,
};

const char* ColumnTypeName(ColumnType type);

/// \brief Column definition inside a base table.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
  /// Number of distinct values; used for equi-join/equality selectivity.
  /// Zero means "unknown" and is defaulted by TableBuilder from row count.
  double ndv = 0;
  /// Synthetic equi-depth histogram (built by TableBuilder); drives range
  /// and equality selectivities in the binder.
  Histogram histogram;
};

}  // namespace cote

#endif  // COTE_CATALOG_COLUMN_H_
