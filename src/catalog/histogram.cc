#include "catalog/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace cote {

Histogram Histogram::Synthesize(double row_count, double ndv, int buckets,
                                uint64_t seed) {
  assert(buckets > 0);
  Histogram h;
  h.row_count_ = std::max(row_count, 1.0);
  h.ndv_ = std::max(ndv, 1.0);

  Rng rng(seed ^ 0x8157063a11ULL);
  // Uneven boundaries: accumulate jittered widths, then normalize.
  std::vector<double> widths(buckets);
  double total_width = 0;
  for (int i = 0; i < buckets; ++i) {
    widths[i] = 0.5 + rng.NextDouble();
    total_width += widths[i];
  }
  h.boundaries_.resize(buckets + 1);
  h.boundaries_[0] = 0;
  for (int i = 0; i < buckets; ++i) {
    h.boundaries_[i + 1] = h.boundaries_[i] + widths[i] / total_width;
  }
  h.boundaries_[buckets] = 1.0;

  // Near-equi-depth fractions with mild skew: bucket depth varies within
  // ±40% of uniform, shaped by a gentle Zipf-ish tilt.
  std::vector<double> depth(buckets);
  double total_depth = 0;
  for (int i = 0; i < buckets; ++i) {
    double zipf = 1.0 + 0.4 / (1.0 + i * 0.3);
    depth[i] = zipf * (0.8 + 0.4 * rng.NextDouble());
    total_depth += depth[i];
  }
  h.fractions_.resize(buckets);
  for (int i = 0; i < buckets; ++i) h.fractions_[i] = depth[i] / total_depth;
  return h;
}

double Histogram::EqualitySelectivity(double position) const {
  position = std::clamp(position, 0.0, 1.0 - 1e-12);
  // Distinct values spread across buckets proportionally to width.
  for (int i = 0; i < num_buckets(); ++i) {
    if (position < boundaries_[i + 1]) {
      double width = boundaries_[i + 1] - boundaries_[i];
      double values_here = std::max(1.0, ndv_ * width);
      return fractions_[i] / values_here;
    }
  }
  return 1.0 / ndv_;
}

double Histogram::LessThanSelectivity(double position) const {
  if (position <= 0) return 0;
  if (position >= 1) return 1;
  double acc = 0;
  for (int i = 0; i < num_buckets(); ++i) {
    if (position >= boundaries_[i + 1]) {
      acc += fractions_[i];
      continue;
    }
    // Linear interpolation within the bucket.
    double width = boundaries_[i + 1] - boundaries_[i];
    double inside = width > 0 ? (position - boundaries_[i]) / width : 0;
    acc += fractions_[i] * inside;
    break;
  }
  return std::clamp(acc, 0.0, 1.0);
}

double Histogram::RangeSelectivity(double lo, double hi) const {
  if (hi < lo) std::swap(lo, hi);
  return std::clamp(LessThanSelectivity(hi) - LessThanSelectivity(lo), 0.0,
                    1.0);
}

double Histogram::LiteralPosition(const std::string& literal) {
  // FNV-1a, folded into [0, 1).
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : literal) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace cote
