#include "catalog/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cote {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kBigInt:
      return "BIGINT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kDecimal:
      return "DECIMAL";
    case ColumnType::kVarchar:
      return "VARCHAR";
    case ColumnType::kDate:
      return "DATE";
  }
  return "?";
}

Table::Table(std::string name, std::vector<Column> columns, double row_count)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      row_count_(row_count) {
  // Default page count: assume ~50 rows per page, at least one page.
  pages_ = std::max(1.0, row_count_ / 50.0);
}

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

TableBuilder::TableBuilder(std::string name, double row_count)
    : name_(std::move(name)), row_count_(row_count) {}

TableBuilder& TableBuilder::Col(const std::string& name, ColumnType type,
                                double ndv) {
  Column c;
  c.name = name;
  c.type = type;
  // Unknown NDV defaults to 10% of rows, a common catalog heuristic.
  c.ndv = ndv > 0 ? ndv : std::max(1.0, row_count_ * 0.1);
  columns_.push_back(std::move(c));
  return *this;
}

std::vector<int> TableBuilder::Resolve(
    const std::vector<std::string>& names) const {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    int ord = -1;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == n) {
        ord = static_cast<int>(i);
        break;
      }
    }
    assert(ord >= 0 && "unknown column in table builder");
    out.push_back(ord);
  }
  return out;
}

TableBuilder& TableBuilder::PrimaryKey(const std::vector<std::string>& columns) {
  primary_key_ = Resolve(columns);
  return *this;
}

TableBuilder& TableBuilder::Idx(const std::string& name,
                                const std::vector<std::string>& columns,
                                bool unique) {
  Index idx;
  idx.name = name;
  idx.key_columns = Resolve(columns);
  idx.unique = unique;
  indexes_.push_back(std::move(idx));
  return *this;
}

TableBuilder& TableBuilder::Fk(const std::vector<std::string>& columns,
                               const std::string& ref_table,
                               const std::vector<std::string>& ref_columns) {
  fks_.push_back(PendingFk{columns, ref_table, ref_columns});
  return *this;
}

TableBuilder& TableBuilder::HashPartition(
    const std::vector<std::string>& columns) {
  partitioning_ = PartitioningSpec::Hash(Resolve(columns));
  return *this;
}

TableBuilder& TableBuilder::Replicate() {
  partitioning_ = PartitioningSpec::Replicated();
  return *this;
}

TableBuilder& TableBuilder::Pages(double pages) {
  pages_ = pages;
  return *this;
}

Table TableBuilder::Build() {
  // Key columns of a primary key are unique by definition.
  if (!primary_key_.empty() && primary_key_.size() == 1) {
    columns_[primary_key_[0]].ndv = row_count_;
  }
  // Synthesize per-column histograms, seeded by table+column name so the
  // same schema always produces the same statistics.
  for (Column& c : columns_) {
    uint64_t seed = 1469598103934665603ULL;
    for (unsigned char ch : name_ + "." + c.name) {
      seed ^= ch;
      seed *= 1099511628211ULL;
    }
    c.histogram = Histogram::Synthesize(row_count_, c.ndv, 32, seed);
  }
  Table t(name_, columns_, row_count_);
  if (pages_ > 0) t.set_pages(pages_);
  t.SetPrimaryKey(primary_key_);
  for (auto& idx : indexes_) t.AddIndex(idx);
  for (auto& fk : fks_) {
    ForeignKey out;
    out.columns = Resolve(fk.columns);
    out.referenced_table = fk.ref_table;
    out.referenced_columns = fk.ref_columns;
    t.AddForeignKey(std::move(out));
  }
  t.SetPartitioning(partitioning_);
  return t;
}

}  // namespace cote
