#include "catalog/catalog.h"

namespace cote {

Status Catalog::AddTable(Table table) {
  if (by_name_.count(table.name()) > 0) {
    return Status::AlreadyExists("table " + table.name());
  }
  auto owned = std::make_unique<Table>(std::move(table));
  by_name_[owned->name()] = owned.get();
  tables_.push_back(std::move(owned));
  return Status::OK();
}

const Table* Catalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

StatusOr<const Table*> Catalog::GetTable(const std::string& name) const {
  const Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("table " + name);
  return t;
}

}  // namespace cote
