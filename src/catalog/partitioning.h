#ifndef COTE_CATALOG_PARTITIONING_H_
#define COTE_CATALOG_PARTITIONING_H_

#include <string>
#include <vector>

namespace cote {

/// How a base table is physically distributed across the nodes of a
/// shared-nothing parallel system (the paper's parallel DB2 setup, §4).
enum class PartitionKind {
  /// Hash-partitioned on a set of key columns.
  kHash,
  /// A full copy on every node (small dimension tables).
  kReplicated,
  /// Resides entirely on one node.
  kSingleNode,
};

/// \brief Physical partitioning specification of a base table.
struct PartitioningSpec {
  PartitionKind kind = PartitionKind::kSingleNode;
  /// Column ordinals of the hash partitioning key; empty unless kHash.
  std::vector<int> key_columns;

  static PartitioningSpec Hash(std::vector<int> columns) {
    return PartitioningSpec{PartitionKind::kHash, std::move(columns)};
  }
  static PartitioningSpec Replicated() {
    return PartitioningSpec{PartitionKind::kReplicated, {}};
  }
  static PartitioningSpec SingleNode() {
    return PartitioningSpec{PartitionKind::kSingleNode, {}};
  }
};

}  // namespace cote

#endif  // COTE_CATALOG_PARTITIONING_H_
