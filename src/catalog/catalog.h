#ifndef COTE_CATALOG_CATALOG_H_
#define COTE_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "common/status.h"

namespace cote {

/// \brief Registry of base tables (a single schema).
///
/// The catalog owns its tables; pointers handed out remain valid for the
/// lifetime of the catalog (tables are never removed).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a table. Fails if a table of the same name exists.
  Status AddTable(Table table);

  /// Looks up a table by name (case-sensitive); nullptr if absent.
  const Table* FindTable(const std::string& name) const;

  /// Looks up a table, returning NotFound if absent.
  StatusOr<const Table*> GetTable(const std::string& name) const;

  const std::vector<std::unique_ptr<Table>>& tables() const { return tables_; }
  int num_tables() const { return static_cast<int>(tables_.size()); }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, Table*> by_name_;
};

}  // namespace cote

#endif  // COTE_CATALOG_CATALOG_H_
