#ifndef COTE_CATALOG_TABLE_H_
#define COTE_CATALOG_TABLE_H_

#include <string>
#include <vector>

#include "catalog/column.h"
#include "catalog/partitioning.h"
#include "common/status.h"

namespace cote {

/// \brief A secondary (or primary) index over a prefix-ordered key.
struct Index {
  std::string name;
  /// Ordered key column ordinals; an index scan naturally produces rows
  /// ordered on this sequence (the source of "natural" interesting orders).
  std::vector<int> key_columns;
  bool unique = false;
};

/// \brief A foreign-key constraint: `columns` reference
/// `referenced_table.referenced_columns`. Used by the random query
/// generator, which prefers FK->PK joins (§5 of the paper).
struct ForeignKey {
  std::vector<int> columns;
  std::string referenced_table;
  /// Referenced columns are kept by name because the referenced table may
  /// be registered in the catalog after this one.
  std::vector<std::string> referenced_columns;
};

/// \brief Base-table definition with statistics and physical design.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns, double row_count);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Ordinal of the named column, or -1 if absent.
  int FindColumn(const std::string& name) const;
  const Column& column(int ordinal) const { return columns_[ordinal]; }

  double row_count() const { return row_count_; }
  /// Number of disk pages occupied by the table (drives scan cost).
  double pages() const { return pages_; }
  void set_pages(double pages) { pages_ = pages; }

  const std::vector<Index>& indexes() const { return indexes_; }
  void AddIndex(Index index) { indexes_.push_back(std::move(index)); }

  const std::vector<int>& primary_key() const { return primary_key_; }
  void SetPrimaryKey(std::vector<int> columns) {
    primary_key_ = std::move(columns);
  }

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  void AddForeignKey(ForeignKey fk) { foreign_keys_.push_back(std::move(fk)); }

  const PartitioningSpec& partitioning() const { return partitioning_; }
  void SetPartitioning(PartitioningSpec spec) {
    partitioning_ = std::move(spec);
  }

 private:
  std::string name_;
  std::vector<Column> columns_;
  double row_count_;
  double pages_;
  std::vector<Index> indexes_;
  std::vector<int> primary_key_;
  std::vector<ForeignKey> foreign_keys_;
  PartitioningSpec partitioning_;
};

/// \brief Fluent builder for tables; fills in defaulted statistics.
///
///   Table t = TableBuilder("orders", 1500000)
///       .Col("o_orderkey", ColumnType::kBigInt, 1500000)
///       .Col("o_custkey", ColumnType::kBigInt, 100000)
///       .PrimaryKey({"o_orderkey"})
///       .Idx("o_pk", {"o_orderkey"}, /*unique=*/true)
///       .HashPartition({"o_orderkey"})
///       .Build();
class TableBuilder {
 public:
  TableBuilder(std::string name, double row_count);

  TableBuilder& Col(const std::string& name, ColumnType type, double ndv = 0);
  TableBuilder& PrimaryKey(const std::vector<std::string>& columns);
  TableBuilder& Idx(const std::string& name,
                    const std::vector<std::string>& columns,
                    bool unique = false);
  TableBuilder& Fk(const std::vector<std::string>& columns,
                   const std::string& ref_table,
                   const std::vector<std::string>& ref_columns);
  TableBuilder& HashPartition(const std::vector<std::string>& columns);
  TableBuilder& Replicate();
  TableBuilder& Pages(double pages);

  Table Build();

 private:
  std::vector<int> Resolve(const std::vector<std::string>& names) const;

  std::string name_;
  double row_count_;
  double pages_ = -1;
  std::vector<Column> columns_;
  std::vector<int> primary_key_;
  std::vector<Index> indexes_;
  struct PendingFk {
    std::vector<std::string> columns;
    std::string ref_table;
    std::vector<std::string> ref_columns;
  };
  std::vector<PendingFk> fks_;
  PartitioningSpec partitioning_ = PartitioningSpec::SingleNode();
};

}  // namespace cote

#endif  // COTE_CATALOG_TABLE_H_
