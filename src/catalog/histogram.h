#ifndef COTE_CATALOG_HISTOGRAM_H_
#define COTE_CATALOG_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cote {

/// \brief Synthetic equi-depth histogram over a column's value domain.
///
/// Real catalogs build histograms from data samples; this library has no
/// data, so histograms are *synthesized* deterministically from a column's
/// row count and NDV, with mild Zipf-like skew — enough for the binder to
/// derive varied, repeatable range selectivities instead of a magic
/// constant, which is what drives cost-model work during plan generation
/// (§3.1: commercial cost models lean on histograms heavily).
///
/// The domain is normalized to [0, 1]; bucket `i` covers
/// [boundary(i), boundary(i+1)) and holds `row_fraction(i)` of the rows.
/// Being equi-depth-ish, boundaries are uneven while fractions are near
/// (but deliberately not exactly) uniform.
class Histogram {
 public:
  /// Builds a histogram for a column with the given statistics. The same
  /// (row_count, ndv, buckets, seed) always yields the same histogram.
  static Histogram Synthesize(double row_count, double ndv, int buckets = 32,
                              uint64_t seed = 0);

  int num_buckets() const { return static_cast<int>(fractions_.size()); }
  double row_count() const { return row_count_; }
  double ndv() const { return ndv_; }

  /// Left boundary of bucket i (normalized domain position); boundary of
  /// num_buckets() is 1.0.
  double boundary(int i) const { return boundaries_[i]; }
  /// Fraction of all rows inside bucket i; fractions sum to 1.
  double row_fraction(int i) const { return fractions_[i]; }

  /// Selectivity of `column = literal` — the average frequency of one
  /// value within the literal's bucket.
  double EqualitySelectivity(double position) const;

  /// Selectivity of `column < literal` at a normalized domain position —
  /// the cumulative row fraction below `position`.
  double LessThanSelectivity(double position) const;

  /// Selectivity of `lo <= column <= hi`.
  double RangeSelectivity(double lo, double hi) const;

  /// Maps an arbitrary literal string to a stable pseudo-position in the
  /// normalized domain (a stand-in for real value-to-domain mapping).
  static double LiteralPosition(const std::string& literal);

 private:
  double row_count_ = 0;
  double ndv_ = 1;
  std::vector<double> boundaries_;  // size buckets + 1, [0..1]
  std::vector<double> fractions_;   // size buckets, sums to 1
};

}  // namespace cote

#endif  // COTE_CATALOG_HISTOGRAM_H_
