#ifndef COTE_OPTIMIZER_STATS_H_
#define COTE_OPTIMIZER_STATS_H_

#include <cstdint>

#include "optimizer/enumerator.h"
#include "optimizer/join_method.h"

namespace cote {

/// \brief Per-join-method counters (plans generated, estimated, ...).
struct JoinTypeCounts {
  int64_t counts[kNumJoinMethods] = {0, 0, 0};

  int64_t& operator[](JoinMethod m) { return counts[static_cast<int>(m)]; }
  int64_t operator[](JoinMethod m) const {
    return counts[static_cast<int>(m)];
  }
  int64_t nljn() const { return counts[0]; }
  int64_t mgjn() const { return counts[1]; }
  int64_t hsjn() const { return counts[2]; }
  int64_t total() const { return counts[0] + counts[1] + counts[2]; }

  JoinTypeCounts& operator+=(const JoinTypeCounts& o) {
    for (int i = 0; i < kNumJoinMethods; ++i) counts[i] += o.counts[i];
    return *this;
  }
};

/// \brief Everything one full optimization run reports.
///
/// The phase timings are what Figure 2 of the paper plots; the plan counts
/// per join method are what Figure 5 compares against the estimates; the
/// total time is what Figures 4/6 compare.
struct OptimizeStats {
  EnumerationStats enumeration;

  JoinTypeCounts join_plans_generated;
  int64_t enforcer_plans = 0;  ///< SORT / repartition / broadcast enforcers
  int64_t scan_plans = 0;      ///< base-table access plans
  int64_t plans_stored = 0;    ///< plans surviving in the MEMO
  int64_t memo_entries = 0;
  int64_t memo_bytes = 0;      ///< actual MEMO plan-list footprint
  int64_t pruned_by_pilot = 0; ///< plans discarded by pilot-pass pruning

  double best_cost = 0;

  // Wall-clock attribution (seconds).
  double total_seconds = 0;
  double gen_seconds[kNumJoinMethods] = {0, 0, 0};  ///< join plan generation
  double save_seconds = 0;   ///< MEMO insertion + pruning ("plan saving")
  double init_seconds = 0;   ///< base-table plans + logical properties
  double enum_seconds = 0;   ///< pure enumeration (Run minus visitor time)

  /// Worker threads the enumeration actually ran with (1 = serial path).
  int parallel_workers = 1;
  /// Σ over workers of in-rank busy time; 0 in a serial run. On one
  /// hardware thread this approaches total enumeration wall time — the
  /// wall/busy gap is the dispatch + rank-merge overhead.
  double enumeration_busy_seconds = 0;

  double other_seconds() const {
    double accounted = gen_seconds[0] + gen_seconds[1] + gen_seconds[2] +
                       save_seconds + init_seconds + enum_seconds;
    double rest = total_seconds - accounted;
    return rest > 0 ? rest : 0;
  }
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_STATS_H_
