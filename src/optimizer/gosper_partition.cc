#include "optimizer/gosper_partition.h"

#include <algorithm>
#include <array>

#include "common/check.h"

namespace cote {
namespace {

// Pascal's triangle up to C(20, k); entries with k > n stay zero, which
// the unranking scan relies on (C(b, k) == 0 whenever b < k).
constexpr auto kBinomial = [] {
  std::array<std::array<int64_t, kGosperPartitionMaxTables + 1>,
             kGosperPartitionMaxTables + 1>
      b{};
  for (int n = 0; n <= kGosperPartitionMaxTables; ++n) {
    b[n][0] = 1;
    for (int k = 1; k <= n; ++k) {
      b[n][k] = b[n - 1][k - 1] + b[n - 1][k];
    }
  }
  return b;
}();

}  // namespace

int64_t GosperRankSize(int n, int k) {
  COTE_CHECK(n >= 0 && n <= kGosperPartitionMaxTables);
  COTE_CHECK(k >= 0 && k <= n);
  return kBinomial[n][k];
}

uint64_t GosperUnrank(int n, int k, int64_t m) {
  COTE_CHECK(k >= 1 && k <= n && n <= kGosperPartitionMaxTables);
  COTE_DCHECK(m >= 0 && m < kBinomial[n][k]);
  uint64_t mask = 0;
  for (int b = n - 1; b >= 0 && k > 0; --b) {
    // Colex combinadic: bit b is set exactly when at least C(b, k) masks
    // of popcount k fit strictly below it.
    const int64_t below = kBinomial[b][k];
    if (below <= m) {
      mask |= uint64_t{1} << b;
      m -= below;
      --k;
    }
  }
  COTE_DCHECK_EQ(k, 0);
  COTE_DCHECK_EQ(m, 0);
  return mask;
}

GosperSlice PartitionGosperRank(int n, int k, int worker, int num_workers) {
  COTE_CHECK(num_workers >= 1);
  COTE_CHECK(worker >= 0 && worker < num_workers);
  const int64_t total = GosperRankSize(n, k);
  const int64_t base = total / num_workers;
  const int64_t remainder = total % num_workers;
  const int64_t begin =
      worker * base + std::min<int64_t>(worker, remainder);
  const int64_t count = base + (worker < remainder ? 1 : 0);
  if (count == 0) return GosperSlice{};
  return GosperSlice{GosperUnrank(n, k, begin), count};
}

}  // namespace cote
