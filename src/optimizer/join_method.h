#ifndef COTE_OPTIMIZER_JOIN_METHOD_H_
#define COTE_OPTIMIZER_JOIN_METHOD_H_

namespace cote {

/// The three join methods of the paper (and of most systems).
enum class JoinMethod {
  kNljn = 0,  ///< nested-loops join
  kMgjn = 1,  ///< sort-merge join
  kHsjn = 2,  ///< hash join
};

inline constexpr int kNumJoinMethods = 3;

inline const char* JoinMethodName(JoinMethod m) {
  switch (m) {
    case JoinMethod::kNljn:
      return "NLJN";
    case JoinMethod::kMgjn:
      return "MGJN";
    case JoinMethod::kHsjn:
      return "HSJN";
  }
  return "?";
}

/// How a join method carries a physical property from input to output
/// (paper Table 2).
enum class Propagation {
  kFull,     ///< any input property value survives (NLJN & order)
  kPartial,  ///< only values tied to the join columns survive (MGJN & order)
  kNone,     ///< the property is destroyed (HSJN & order)
};

/// Table 2, "Order" column: NLJN full, MGJN partial, HSJN none.
inline Propagation OrderPropagation(JoinMethod m) {
  switch (m) {
    case JoinMethod::kNljn:
      return Propagation::kFull;
    case JoinMethod::kMgjn:
      return Propagation::kPartial;
    case JoinMethod::kHsjn:
      return Propagation::kNone;
  }
  return Propagation::kNone;
}

/// Table 2, "Partition" column: all join methods propagate partitions fully
/// (the join's output stays distributed the way its inputs were).
inline Propagation PartitionPropagation(JoinMethod m) {
  (void)m;
  return Propagation::kFull;
}

}  // namespace cote

#endif  // COTE_OPTIMIZER_JOIN_METHOD_H_
