#include "optimizer/topdown_enumerator.h"

#include "common/check.h"

namespace cote {

namespace {
constexpr double kCardOneEpsilon = 1e-9;
constexpr int kFlatExploredMaxTables = 20;
}  // namespace

bool TopDownEnumerator::Lookup(uint64_t bits, bool* constructible) const {
  COTE_DCHECK_NE(bits, uint64_t{0});
  if (!explored_flat_.empty()) {
    COTE_DCHECK_LT(bits, explored_flat_.size());
    if (explored_flat_[bits] == 0) return false;
    *constructible = constructible_flat_[bits] != 0;
    return true;
  }
  auto it = explored_.find(bits);
  if (it == explored_.end()) return false;
  *constructible = it->second;
  return true;
}

void TopDownEnumerator::Store(uint64_t bits, bool constructible) {
  COTE_DCHECK_NE(bits, uint64_t{0});
  if (!explored_flat_.empty()) {
    COTE_DCHECK_LT(bits, explored_flat_.size());
    explored_flat_[bits] = 1;
    constructible_flat_[bits] = constructible ? 1 : 0;
    return;
  }
  explored_[bits] = constructible;
}

EnumerationStats TopDownEnumerator::Run(JoinVisitor* visitor,
                                        ResourceBudget* budget) {
  COTE_CHECK(visitor != nullptr);
  EnumerationStats stats;
  budget_ = budget;
  const int n = graph_.num_tables();
  COTE_CHECK_LE(n, 64);
  explored_.clear();
  if (n <= kFlatExploredMaxTables) {
    explored_flat_.assign(size_t{1} << n, 0);
    constructible_flat_.assign(size_t{1} << n, 0);
  } else {
    explored_flat_.clear();
    constructible_flat_.clear();
  }

  // Base-table entries exist unconditionally (as in the bottom-up
  // enumerator, where they are created before any join).
  for (int t = 0; t < n; ++t) {
    TableSet s = TableSet::Single(t);
    visitor->InitializeEntry(s);
    Store(s.bits(), true);
    ++stats.entries_created;
    if (budget_ != nullptr) budget_->ChargeEntries(1);
  }
  if (n <= 1) {
    budget_ = nullptr;
    return stats;
  }

  Explore(graph_.AllTables(), visitor, &stats);
  budget_ = nullptr;
  return stats;
}

bool TopDownEnumerator::Explore(TableSet s, JoinVisitor* visitor,
                                EnumerationStats* stats) {
  // Cooperative cancellation, once per explored subset: a tripped budget
  // reports the subset as unconstructible, which unwinds the recursion
  // without emitting further joins.
  if (budget_ != nullptr && budget_->Checkpoint()) return false;
  bool memoized;
  if (Lookup(s.bits(), &memoized)) return memoized;
  // Mark in-progress as false; splits are strictly smaller so there is no
  // true cycle, but this keeps accidental re-entry harmless.
  Store(s.bits(), false);

  COTE_DCHECK(s.size() >= 2);
  const uint64_t mask = s.bits();
  const uint64_t low = LowestBit(mask);
  const uint64_t rest_bits = mask ^ low;
  bool constructible = false;

  // Visit each unordered split once: `a` always holds the lowest table
  // (sub2 runs over the proper submasks of mask^low, descending — the
  // same sequence, with half the iterations, as filtering all submasks).
  for (uint64_t sub2 = (rest_bits - 1) & rest_bits;;
       sub2 = (sub2 - 1) & rest_bits) {
    if (budget_ != nullptr && budget_->tripped()) break;
    TableSet a(sub2 | low), b(rest_bits ^ sub2);

    // Explore both sides unconditionally so subset coverage matches the
    // bottom-up enumerator even when one side is not constructible.
    bool a_ok = Explore(a, visitor, stats);
    bool b_ok = Explore(b, visitor, stats);
    if (a_ok && b_ok) {
      graph_.ConnectingPredicates(a, b, &preds_);
      bool cartesian = preds_.empty();
      bool allowed = true;
      if (cartesian) {
        allowed =
            options_.allow_all_cartesian ||
            (options_.cartesian_when_card_one &&
             (visitor->EntryCardinality(a) <= 1.0 + kCardOneEpsilon ||
              visitor->EntryCardinality(b) <= 1.0 + kCardOneEpsilon));
      }
      if (allowed) {
        bool emitted = false;
        auto try_emit = [&](TableSet outer, TableSet inner) {
          if (inner.size() > options_.max_composite_inner) return;
          if (!graph_.OuterEnabled(outer)) return;
          if (!graph_.OuterJoinOrientationOk(outer, inner)) return;
          if (!constructible) {
            visitor->InitializeEntry(s);
            Store(s.bits(), true);
            ++stats->entries_created;
            if (budget_ != nullptr) budget_->ChargeEntries(1);
            constructible = true;
          }
          emitted = true;
          visitor->OnJoin(outer, inner, preds_, cartesian);
          ++stats->joins_ordered;
        };
        try_emit(a, b);
        try_emit(b, a);
        if (emitted) ++stats->joins_unordered;
      }
    }
    if (sub2 == 0) break;
  }
  Store(s.bits(), constructible);
  return constructible;
}

EnumerationStats RunEnumeration(const QueryGraph& graph,
                                const EnumeratorOptions& options,
                                JoinVisitor* visitor, ResourceBudget* budget) {
  if (options.kind == EnumeratorKind::kTopDown) {
    TopDownEnumerator enumerator(graph, options);
    return enumerator.Run(visitor, budget);
  }
  JoinEnumerator enumerator(graph, options);
  return enumerator.Run(visitor, budget);
}

}  // namespace cote
