#include "optimizer/topdown_enumerator.h"

namespace cote {

namespace {
constexpr double kCardOneEpsilon = 1e-9;
}  // namespace

EnumerationStats TopDownEnumerator::Run(JoinVisitor* visitor) {
  EnumerationStats stats;
  explored_.clear();
  const int n = graph_.num_tables();

  // Base-table entries exist unconditionally (as in the bottom-up
  // enumerator, where they are created before any join).
  for (int t = 0; t < n; ++t) {
    TableSet s = TableSet::Single(t);
    visitor->InitializeEntry(s);
    explored_[s.bits()] = true;
    ++stats.entries_created;
  }
  if (n <= 1) return stats;

  Explore(graph_.AllTables(), visitor, &stats);
  return stats;
}

bool TopDownEnumerator::Explore(TableSet s, JoinVisitor* visitor,
                                EnumerationStats* stats) {
  auto it = explored_.find(s.bits());
  if (it != explored_.end()) return it->second;
  // Mark in-progress as false; splits are strictly smaller so there is no
  // true cycle, but this keeps accidental re-entry harmless.
  explored_[s.bits()] = false;

  const uint64_t mask = s.bits();
  const uint64_t low = mask & (~mask + 1);
  bool constructible = false;

  for (uint64_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
    if ((sub & low) == 0) continue;  // visit each unordered split once
    TableSet a(sub), b(mask & ~sub);

    // Explore both sides unconditionally so subset coverage matches the
    // bottom-up enumerator even when one side is not constructible.
    bool a_ok = Explore(a, visitor, stats);
    bool b_ok = Explore(b, visitor, stats);
    if (!a_ok || !b_ok) continue;

    std::vector<int> preds = graph_.ConnectingPredicates(a, b);
    bool cartesian = preds.empty();
    if (cartesian) {
      bool allowed =
          options_.allow_all_cartesian ||
          (options_.cartesian_when_card_one &&
           (visitor->EntryCardinality(a) <= 1.0 + kCardOneEpsilon ||
            visitor->EntryCardinality(b) <= 1.0 + kCardOneEpsilon));
      if (!allowed) continue;
    }

    bool emitted = false;
    auto try_emit = [&](TableSet outer, TableSet inner) {
      if (inner.size() > options_.max_composite_inner) return;
      if (!graph_.OuterEnabled(outer)) return;
      if (!graph_.OuterJoinOrientationOk(outer, inner)) return;
      if (!constructible) {
        visitor->InitializeEntry(s);
        explored_[s.bits()] = true;
        ++stats->entries_created;
        constructible = true;
      }
      emitted = true;
      visitor->OnJoin(outer, inner, preds, cartesian);
      ++stats->joins_ordered;
    };
    try_emit(a, b);
    try_emit(b, a);
    if (emitted) ++stats->joins_unordered;
  }
  explored_[s.bits()] = constructible;
  return constructible;
}

EnumerationStats RunEnumeration(const QueryGraph& graph,
                                const EnumeratorOptions& options,
                                JoinVisitor* visitor) {
  if (options.kind == EnumeratorKind::kTopDown) {
    TopDownEnumerator enumerator(graph, options);
    return enumerator.Run(visitor);
  }
  JoinEnumerator enumerator(graph, options);
  return enumerator.Run(visitor);
}

}  // namespace cote
