#include "optimizer/enumerator.h"

#include <bit>
#include <unordered_set>

namespace cote {

namespace {
constexpr double kCardOneEpsilon = 1e-9;
}  // namespace

EnumerationStats JoinEnumerator::Run(JoinVisitor* visitor) {
  EnumerationStats stats;
  const int n = graph_.num_tables();
  std::unordered_set<uint64_t> exists;

  // Base-table entries always exist.
  for (int t = 0; t < n; ++t) {
    TableSet s = TableSet::Single(t);
    exists.insert(s.bits());
    visitor->InitializeEntry(s);
    ++stats.entries_created;
  }
  if (n == 1) return stats;

  const uint64_t all = TableSet::FirstN(n).bits();

  // Bottom-up over set sizes. For each size, scan all masks of that size;
  // for each, scan its submask splits. Total work is O(3^n) mask pairs,
  // fine for the table counts DP enumeration can handle at all.
  for (int size = 2; size <= n; ++size) {
    for (uint64_t mask = 1; mask <= all; ++mask) {
      if (std::popcount(mask) != size) continue;
      TableSet ts(mask);
      const uint64_t low = mask & (~mask + 1);  // lowest set bit
      bool entry_exists = false;

      for (uint64_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        // Visit each unordered split once: keep the side holding the
        // lowest table of the set.
        if ((sub & low) == 0) continue;
        uint64_t rest = mask & ~sub;
        if (exists.count(sub) == 0 || exists.count(rest) == 0) continue;

        TableSet s(sub), l(rest);
        std::vector<int> preds = graph_.ConnectingPredicates(s, l);
        bool cartesian = preds.empty();
        if (cartesian) {
          bool allowed =
              options_.allow_all_cartesian ||
              (options_.cartesian_when_card_one &&
               (visitor->EntryCardinality(s) <= 1.0 + kCardOneEpsilon ||
                visitor->EntryCardinality(l) <= 1.0 + kCardOneEpsilon));
          if (!allowed) continue;
        }

        // Ordered emissions (outer, inner).
        bool emitted = false;
        auto try_emit = [&](TableSet outer, TableSet inner) {
          if (inner.size() > options_.max_composite_inner) return;
          if (!graph_.OuterEnabled(outer)) return;
          if (!graph_.OuterJoinOrientationOk(outer, inner)) return;
          if (!emitted && !entry_exists) {
            // First join for this entry: create it before reporting.
            exists.insert(mask);
            visitor->InitializeEntry(ts);
            ++stats.entries_created;
            entry_exists = true;
          }
          emitted = true;
          visitor->OnJoin(outer, inner, preds, cartesian);
          ++stats.joins_ordered;
        };
        try_emit(s, l);
        try_emit(l, s);
        if (emitted) ++stats.joins_unordered;
      }
    }
  }
  return stats;
}

}  // namespace cote
