#include "optimizer/enumerator.h"

#include <bit>
#include <unordered_set>

#include "common/check.h"

namespace cote {

namespace {

constexpr double kCardOneEpsilon = 1e-9;

/// Above this table count the existence bitmap (2^n bytes) stops being
/// cheap; fall back to hashing. Enumeration itself is O(3^n), so queries
/// past this point are outside DP range anyway.
constexpr int kFlatExistsMaxTables = 20;

/// The enumeration loop, parameterized over the subset-existence set so
/// the n <= kFlatExistsMaxTables case runs on a flat bitmap (a lookup is
/// one byte load) without a branch in the inner loop.
///
/// Behavioral invariants versus the original skip-scan implementation
/// (guarded by the golden-equivalence tests):
///  * masks of each size are visited in ascending numeric order — Gosper's
///    hack produces exactly that sequence, touching C(n,k) masks instead
///    of filtering all 2^n by popcount;
///  * splits of a mask are visited with the set's lowest table forced into
///    `sub`, in descending numeric order of `sub` — iterating sub' over
///    the submasks of mask^low and OR-ing the low bit back enumerates the
///    same sequence with half the iterations;
///  * predicate indices are delivered in ascending order (the
///    QueryGraph fast path sorts its per-pair gather), into one scratch
///    vector reused across all splits.
template <typename ExistsFn, typename InsertFn>
EnumerationStats RunBottomUp(const QueryGraph& graph,
                             const EnumeratorOptions& options,
                             JoinVisitor* visitor, ExistsFn exists,
                             InsertFn insert, std::vector<int>& preds,
                             ResourceBudget* budget) {
  EnumerationStats stats;
  const int n = graph.num_tables();

  // Base-table entries always exist.
  for (int t = 0; t < n; ++t) {
    TableSet s = TableSet::Single(t);
    insert(s.bits());
    visitor->InitializeEntry(s);
    ++stats.entries_created;
    if (budget != nullptr) budget->ChargeEntries(1);
  }
  if (n == 1) return stats;

  const uint64_t all = TableSet::FirstN(n).bits();

  // Bottom-up over set sizes; per size, per mask, over its submask splits.
  // Total work stays O(3^n) split pairs — the fast path removes the
  // per-pair constant (hash probes, allocation, predicate-list scans).
  for (int size = 2; size <= n; ++size) {
    uint64_t mask = size == 64 ? ~uint64_t{0} : (uint64_t{1} << size) - 1;
    while (true) {
      // Cooperative cancellation, once per mask batch: the overshoot past
      // a tripped budget is at most one mask's worth of splits.
      if (budget != nullptr && budget->Checkpoint()) return stats;
      TableSet ts(mask);
      const uint64_t low = LowestBit(mask);
      const uint64_t rest_bits = mask ^ low;
      bool entry_exists = false;

      // Visit each unordered split once: `sub` always holds the lowest
      // table. sub2 runs over the proper submasks of mask^low (descending,
      // down to and including 0, excluding mask^low itself so `rest` is
      // never empty).
      for (uint64_t sub2 = (rest_bits - 1) & rest_bits;;
           sub2 = (sub2 - 1) & rest_bits) {
        const uint64_t sub = sub2 | low;
        const uint64_t rest = rest_bits ^ sub2;
        COTE_DCHECK_EQ(sub & rest, uint64_t{0});
        COTE_DCHECK_EQ(sub | rest, mask);
        if (exists(sub) && exists(rest)) {
          TableSet s(sub), l(rest);
          graph.ConnectingPredicates(s, l, &preds);
          const bool cartesian = preds.empty();
          bool allowed = true;
          if (cartesian) {
            allowed =
                options.allow_all_cartesian ||
                (options.cartesian_when_card_one &&
                 (visitor->EntryCardinality(s) <= 1.0 + kCardOneEpsilon ||
                  visitor->EntryCardinality(l) <= 1.0 + kCardOneEpsilon));
          }
          if (allowed) {
            // Ordered emissions (outer, inner).
            bool emitted = false;
            auto try_emit = [&](TableSet outer, TableSet inner) {
              if (inner.size() > options.max_composite_inner) return;
              if (!graph.OuterEnabled(outer)) return;
              if (!graph.OuterJoinOrientationOk(outer, inner)) return;
              if (!emitted && !entry_exists) {
                // First join for this entry: create it before reporting.
                insert(mask);
                visitor->InitializeEntry(ts);
                ++stats.entries_created;
                if (budget != nullptr) budget->ChargeEntries(1);
                entry_exists = true;
              }
              emitted = true;
              visitor->OnJoin(outer, inner, preds, cartesian);
              ++stats.joins_ordered;
            };
            try_emit(s, l);
            try_emit(l, s);
            if (emitted) ++stats.joins_unordered;
          }
        }
        if (sub2 == 0) break;
      }

      // Gosper's hack: the next mask with the same popcount.
      const uint64_t carry = mask + low;
      if (carry < mask || carry > all) break;  // wrapped or size exhausted
      mask = carry | (((mask ^ carry) >> 2) / low);
    }
  }
  return stats;
}

}  // namespace

EnumerationStats JoinEnumerator::Run(JoinVisitor* visitor,
                                     ResourceBudget* budget) {
  COTE_CHECK(visitor != nullptr);
  const int n = graph_->num_tables();
  COTE_CHECK_LE(n, 64);
  if (n <= kFlatExistsMaxTables) {
    // assign() reuses the buffer's capacity, so from the second run on
    // (same enumerator, same-or-smaller graph) the flat path allocates
    // nothing.
    exists_.assign(size_t{1} << n, 0);
    return RunBottomUp(
        *graph_, options_, visitor,
        [this](uint64_t bits) { return exists_[bits] != 0; },
        [this](uint64_t bits) { exists_[bits] = 1; }, preds_, budget);
  }
  // hotpath-ok: documented hashed fallback for n > 20, outside DP range
  std::unordered_set<uint64_t> exists;
  return RunBottomUp(
      *graph_, options_, visitor,
      [&exists](uint64_t bits) { return exists.count(bits) != 0; },
      // hotpath-ok: hashed-fallback existence insert (n > 20 only)
      [&exists](uint64_t bits) { exists.insert(bits); }, preds_, budget);
}

}  // namespace cote
