#ifndef COTE_OPTIMIZER_TOPDOWN_ENUMERATOR_H_
#define COTE_OPTIMIZER_TOPDOWN_ENUMERATOR_H_

#include <unordered_map>
#include <vector>

#include "optimizer/enumerator.h"

namespace cote {

/// \brief Memoized top-down join enumerator (Volcano/Cascades search
/// order).
///
/// §6.2 of the paper discusses transformation-based optimizers, whose
/// MEMO "is not necessarily filled bottom-up — an entry for a larger
/// logical expression might be populated before that for a smaller
/// expression". This enumerator explores splits recursively from the full
/// table set downwards, memoizing constructibility per subset — yet emits
/// exactly the same set of joins as the bottom-up JoinEnumerator (§3.1:
/// changing only the *relative order* of joins enumerated does not affect
/// compilation complexity). It drives the identical JoinVisitor interface,
/// so both the plan generator and the plan counter run unchanged on top of
/// it — demonstrating that the COTE framework carries over to top-down
/// optimizers.
///
/// Invariants shared with the bottom-up enumerator:
///  * InitializeEntry(s) fires exactly once per constructible subset,
///    before any OnJoin that mentions s;
///  * both children of an emitted join have been initialized (and, in
///    normal mode, fully planned) beforehand;
///  * the same knobs apply: composite-inner limit, Cartesian rules,
///    outer-join eligibility.
class TopDownEnumerator {
 public:
  TopDownEnumerator(const QueryGraph& graph, const EnumeratorOptions& options)
      : graph_(graph), options_(options) {}

  /// Runs the exploration from the full table set; returns the same
  /// statistics the bottom-up enumerator reports. A non-null `budget`
  /// makes the run cooperative exactly as in JoinEnumerator::Run: entries
  /// are charged as they are created and one Checkpoint() per Explore()
  /// call stops the recursion early once the budget trips.
  EnumerationStats Run(JoinVisitor* visitor, ResourceBudget* budget = nullptr);

 private:
  /// Explores subset `s`; returns whether it is constructible (a single
  /// table, or splittable into two constructible parts joined by a
  /// predicate or an admissible Cartesian product). Memoized.
  bool Explore(TableSet s, JoinVisitor* visitor, EnumerationStats* stats);

  /// Memoization accessors backed by flat byte arrays for small queries
  /// (one load per probe) and by the hash map beyond that.
  bool Lookup(uint64_t bits, bool* constructible) const;
  void Store(uint64_t bits, bool constructible);

  const QueryGraph& graph_;
  EnumeratorOptions options_;
  /// Active budget for the current Run(), or null when ungoverned. Only
  /// valid during Run(); cleared before it returns.
  ResourceBudget* budget_ = nullptr;
  /// Flat memoization for n <= 20: explored flag and constructibility per
  /// subset mask. Empty (unused) when the query is larger.
  std::vector<uint8_t> explored_flat_;
  std::vector<uint8_t> constructible_flat_;
  /// Hash fallback for very large queries; presence implies explored.
  std::unordered_map<uint64_t, bool> explored_;
  /// Scratch for connecting-predicate gathering; safe to reuse across the
  /// recursion because it is only live between the child Explore() calls
  /// of one split and that split's emissions.
  std::vector<int> preds_;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_TOPDOWN_ENUMERATOR_H_
