#ifndef COTE_OPTIMIZER_PROPERTIES_PARTITION_PROPERTY_H_
#define COTE_OPTIMIZER_PROPERTIES_PARTITION_PROPERTY_H_

#include <string>
#include <vector>

#include "query/column_ref.h"
#include "query/equivalence.h"

namespace cote {

/// \brief Data-partition physical property for shared-nothing planning.
///
/// Describes how the rows of an intermediate result are distributed across
/// the nodes of the parallel system (the paper's second property, §3.2).
/// In serial mode every plan carries kSerial.
class PartitionProperty {
 public:
  enum class Kind {
    kSerial,      ///< serial optimizer: partitioning not modeled
    kHash,        ///< hash-distributed on a set of key columns
    kReplicated,  ///< full copy on every node
    kSingleNode,  ///< all rows on one node
  };

  PartitionProperty() : kind_(Kind::kSerial) {}
  static PartitionProperty Serial() { return PartitionProperty(); }
  static PartitionProperty Hash(std::vector<ColumnRef> columns);
  static PartitionProperty Replicated() {
    PartitionProperty p;
    p.kind_ = Kind::kReplicated;
    return p;
  }
  static PartitionProperty SingleNode() {
    PartitionProperty p;
    p.kind_ = Kind::kSingleNode;
    return p;
  }

  Kind kind() const { return kind_; }
  /// Hash key columns, kept sorted (set semantics).
  const std::vector<ColumnRef>& columns() const { return columns_; }

  bool operator==(const PartitionProperty& o) const {
    return kind_ == o.kind_ && columns_ == o.columns_;
  }
  bool operator!=(const PartitionProperty& o) const { return !(*this == o); }

  /// Rewrites key columns through the equivalence relation and re-sorts.
  PartitionProperty Canonicalize(const ColumnEquivalence& equiv) const;

  /// Allocation-free variant for the estimate-mode hot path: writes the
  /// canonical form into `*out`, reusing its key buffer's capacity.
  /// `out` must not alias `this`.
  void CanonicalizeInto(const ColumnEquivalence& equiv,
                        PartitionProperty* out) const;

  /// True if this distribution can serve as `required` without data
  /// movement. Replicated serves any hash requirement; single-node rows
  /// are trivially "co-partitioned" with anything on that node.
  bool Satisfies(const PartitionProperty& required) const;

  /// True if the partition keys are a subset of the given (canonical)
  /// column set — i.e. co-location on these join columns holds.
  bool KeysSubsetOf(const std::vector<ColumnRef>& columns) const;

  std::string ToString() const;

 private:
  Kind kind_;
  std::vector<ColumnRef> columns_;
};

struct PartitionPropertyHash {
  size_t operator()(const PartitionProperty& p) const {
    size_t h = static_cast<size_t>(p.kind()) * 0x9e3779b97f4a7c15ULL;
    for (const ColumnRef& c : p.columns()) {
      h = h * 1315423911u + c.Encode();
    }
    return h;
  }
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_PROPERTIES_PARTITION_PROPERTY_H_
