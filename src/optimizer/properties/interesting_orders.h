#ifndef COTE_OPTIMIZER_PROPERTIES_INTERESTING_ORDERS_H_
#define COTE_OPTIMIZER_PROPERTIES_INTERESTING_ORDERS_H_

#include <vector>

#include "common/table_set.h"
#include "optimizer/properties/order_property.h"
#include "query/query_graph.h"

namespace cote {

/// Where an interesting order comes from; determines its coverage semantics
/// (§4 item 2: prefix subsumption for ORDER BY, set subsumption for
/// GROUP BY) and when it retires.
enum class OrderSource {
  kJoin,     ///< matches the join column(s) of a (future) join predicate
  kGroupBy,  ///< matches the grouping attributes (set semantics)
  kOrderBy,  ///< matches (a prefix of) the ordering attributes
};

/// \brief One interesting order value with its provenance.
struct OrderInterest {
  OrderProperty order;
  OrderSource source = OrderSource::kJoin;
  /// For kJoin: index of the predicate this interest serves.
  int pred_index = -1;
  /// Tables whose columns appear in the order; the interest is applicable
  /// to a MEMO entry only once all of them are joined in.
  TableSet tables;
};

/// \brief Derives and answers questions about the query's interesting orders.
///
/// Derivation follows §3.2/§4 of the paper and the order-optimization
/// literature it cites:
///  * per join predicate, a single-column order on each side;
///  * per joined table pair with several predicates, the concatenated
///    multi-column order on each side (multi-column sort-merge);
///  * every non-empty prefix of the ORDER BY list (prefix semantics);
///  * the GROUP BY column set (set semantics), plus its per-table
///    projections (pushdown to base tables).
///
/// Retirement: a kJoin interest retires inside a MEMO entry that contains
/// both tables of its predicate (the join has been applied; the order can
/// no longer help a future merge join). kGroupBy/kOrderBy interests never
/// retire — they are consumed above the join tree.
class InterestingOrders {
 public:
  explicit InterestingOrders(const QueryGraph& graph);

  const std::vector<OrderInterest>& interests() const { return interests_; }

  /// True if interest `i` is applicable to entry `s` (all its columns are
  /// available) and still interesting above `s` (not retired).
  bool ActiveFor(const OrderInterest& i, TableSet s) const;

  /// The interests active for entry `s`.
  std::vector<const OrderInterest*> ActiveInterests(TableSet s) const;

  /// Allocation-free variant: fills `*out` (cleared first), reusing its
  /// capacity. For per-entry calls on the estimate-mode hot path.
  void ActiveInterests(TableSet s,
                       std::vector<const OrderInterest*>* out) const;

  /// True if a plan ordered by (canonical) `order` is worth keeping in the
  /// MEMO entry `s`: the order satisfies at least one active interest,
  /// under that interest's coverage semantics. Orders useless for every
  /// remaining operation are "retired" and collapse to DC.
  bool Useful(const OrderProperty& order, TableSet s,
              const ColumnEquivalence& equiv) const;

  /// Allocation-free variant: canonicalizes each candidate interest into
  /// `*canon_scratch` (which must not alias `order`) instead of a fresh
  /// temporary. For per-join calls on the estimate-mode hot path.
  bool Useful(const OrderProperty& order, TableSet s,
              const ColumnEquivalence& equiv,
              OrderProperty* canon_scratch) const;

 private:
  const QueryGraph& graph_;
  std::vector<OrderInterest> interests_;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_PROPERTIES_INTERESTING_ORDERS_H_
