#include "optimizer/properties/partition_property.h"

#include <algorithm>

#include "common/str_util.h"

namespace cote {

PartitionProperty PartitionProperty::Hash(std::vector<ColumnRef> columns) {
  PartitionProperty p;
  p.kind_ = Kind::kHash;
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  p.columns_ = std::move(columns);
  return p;
}

PartitionProperty PartitionProperty::Canonicalize(
    const ColumnEquivalence& equiv) const {
  PartitionProperty out;
  CanonicalizeInto(equiv, &out);
  return out;
}

void PartitionProperty::CanonicalizeInto(const ColumnEquivalence& equiv,
                                         PartitionProperty* out) const {
  out->kind_ = kind_;
  std::vector<ColumnRef>& out_cols = out->columns_;
  out_cols.clear();
  if (kind_ != Kind::kHash) return;
  for (const ColumnRef& c : columns_) out_cols.push_back(equiv.Find(c));
  std::sort(out_cols.begin(), out_cols.end());
  out_cols.erase(std::unique(out_cols.begin(), out_cols.end()),
                 out_cols.end());
}

bool PartitionProperty::Satisfies(const PartitionProperty& required) const {
  if (*this == required) return true;
  switch (required.kind_) {
    case Kind::kSerial:
      return true;  // serial mode: no distribution requirements
    case Kind::kHash:
      // A replicated copy co-locates with any partitioning.
      return kind_ == Kind::kReplicated;
    case Kind::kReplicated:
      return false;
    case Kind::kSingleNode:
      return kind_ == Kind::kReplicated;
  }
  return false;
}

bool PartitionProperty::KeysSubsetOf(
    const std::vector<ColumnRef>& columns) const {
  if (kind_ != Kind::kHash) return false;
  for (const ColumnRef& c : columns_) {
    if (std::find(columns.begin(), columns.end(), c) == columns.end()) {
      return false;
    }
  }
  return !columns_.empty();
}

std::string PartitionProperty::ToString() const {
  switch (kind_) {
    case Kind::kSerial:
      return "serial";
    case Kind::kReplicated:
      return "replicated";
    case Kind::kSingleNode:
      return "single-node";
    case Kind::kHash: {
      std::vector<std::string> parts;
      for (const ColumnRef& c : columns_) parts.push_back(c.ToString());
      return "hash(" + Join(parts, ",") + ")";
    }
  }
  return "?";
}

}  // namespace cote
