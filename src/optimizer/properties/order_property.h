#ifndef COTE_OPTIMIZER_PROPERTIES_ORDER_PROPERTY_H_
#define COTE_OPTIMIZER_PROPERTIES_ORDER_PROPERTY_H_

#include <string>
#include <vector>

#include "query/column_ref.h"
#include "query/equivalence.h"

namespace cote {

/// \brief The classic "interesting order" physical property (System R, §2.2).
///
/// An order is a sequence of columns the rows are sorted on. The empty order
/// is the paper's "DC" (don't-care) value: no useful order. Orders are
/// compared *after* canonicalization through a column-equivalence relation,
/// because join predicates make orders on different columns equivalent
/// (`R.a = S.a` makes orders on R.a and S.a interchangeable).
class OrderProperty {
 public:
  OrderProperty() = default;
  explicit OrderProperty(std::vector<ColumnRef> columns)
      : columns_(std::move(columns)) {}

  static OrderProperty None() { return OrderProperty(); }

  /// Replaces the column list by copy, reusing this property's buffer
  /// capacity (scratch-object reuse on the estimate-mode hot path).
  void Assign(const std::vector<ColumnRef>& columns) { columns_ = columns; }

  const std::vector<ColumnRef>& columns() const { return columns_; }
  bool IsNone() const { return columns_.empty(); }
  int size() const { return static_cast<int>(columns_.size()); }

  bool operator==(const OrderProperty& o) const {
    return columns_ == o.columns_;
  }
  bool operator!=(const OrderProperty& o) const { return !(*this == o); }

  /// Rewrites every column to its equivalence-class representative and
  /// drops repeated columns (a column equivalent to an earlier one adds no
  /// ordering information).
  OrderProperty Canonicalize(const ColumnEquivalence& equiv) const;

  /// Allocation-free variant for the estimate-mode hot path: writes the
  /// canonical form into `*out`, reusing its column buffer's capacity.
  /// `out` must not alias `this`. Canonicalizing into a reused scratch
  /// OrderProperty performs no heap allocation in steady state — the
  /// property hotpath_alloc_test locks in.
  void CanonicalizeInto(const ColumnEquivalence& equiv,
                        OrderProperty* out) const;

  /// True if rows ordered by *this* also satisfy `required` (prefix
  /// semantics): `required` must be a prefix of this order. This is the
  /// paper's subsumption operator: required ≺ this.
  bool SatisfiesPrefix(const OrderProperty& required) const;

  /// True if the first required.size() columns of this order are exactly
  /// the columns of `required`, in any permutation (set semantics — what
  /// GROUP BY coverage needs, §4 item 2).
  bool SatisfiesSet(const OrderProperty& required) const;

  /// True if `general` strictly subsumes *this* under prefix semantics
  /// (this ≺ general and this != general).
  bool StrictlySubsumedBy(const OrderProperty& general) const {
    return general.size() > size() && general.SatisfiesPrefix(*this);
  }

  /// Concatenation, skipping columns already present.
  OrderProperty Extend(const OrderProperty& suffix) const;

  /// Set of distinct tables whose columns appear.
  std::vector<int> Tables() const;

  std::string ToString() const;

 private:
  std::vector<ColumnRef> columns_;
};

struct OrderPropertyHash {
  size_t operator()(const OrderProperty& o) const {
    size_t h = 0x9e3779b9;
    for (const ColumnRef& c : o.columns()) {
      h = h * 1315423911u + c.Encode();
    }
    return h;
  }
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_PROPERTIES_ORDER_PROPERTY_H_
