#include "optimizer/properties/interesting_orders.h"

#include <algorithm>
#include <map>

namespace cote {

namespace {

TableSet TablesOf(const OrderProperty& order) {
  TableSet s;
  for (const ColumnRef& c : order.columns()) s = s.With(c.table);
  return s;
}

}  // namespace

InterestingOrders::InterestingOrders(const QueryGraph& graph) : graph_(graph) {
  auto add = [&](OrderProperty order, OrderSource source, int pred_index) {
    if (order.IsNone()) return;
    // Dedupe identical (order, source) pairs; keep distinct pred_indexes
    // only when the retirement behaviour differs (different table pairs).
    for (const OrderInterest& existing : interests_) {
      if (existing.order == order && existing.source == source &&
          existing.pred_index == pred_index) {
        return;
      }
    }
    OrderInterest interest;
    interest.tables = TablesOf(order);
    interest.order = std::move(order);
    interest.source = source;
    interest.pred_index = pred_index;
    interests_.push_back(std::move(interest));
  };

  // Join-column orders: one single-column order per predicate side.
  const auto& preds = graph.join_predicates();
  for (size_t i = 0; i < preds.size(); ++i) {
    add(OrderProperty({preds[i].left}), OrderSource::kJoin,
        static_cast<int>(i));
    add(OrderProperty({preds[i].right}), OrderSource::kJoin,
        static_cast<int>(i));
  }

  // Multi-column merge orders for table pairs joined by several predicates.
  std::map<std::pair<int, int>, std::vector<int>> by_pair;
  for (size_t i = 0; i < preds.size(); ++i) {
    int a = preds[i].left.table, b = preds[i].right.table;
    by_pair[{std::min(a, b), std::max(a, b)}].push_back(static_cast<int>(i));
  }
  for (const auto& [pair, indices] : by_pair) {
    (void)pair;
    if (indices.size() < 2) continue;
    std::vector<ColumnRef> left_cols, right_cols;
    for (int pi : indices) {
      left_cols.push_back(preds[pi].left);
      right_cols.push_back(preds[pi].right);
    }
    // The concatenated order retires with (any of) the pair's predicates;
    // use the first predicate of the pair as the retirement anchor.
    add(OrderProperty(std::move(left_cols)), OrderSource::kJoin, indices[0]);
    add(OrderProperty(std::move(right_cols)), OrderSource::kJoin, indices[0]);
  }

  // ORDER BY: every non-empty prefix is interesting as soon as its tables
  // are all present (orders are pushed down to base tables, §3.3 / [21]).
  const auto& ob = graph.order_by();
  for (size_t len = 1; len <= ob.size(); ++len) {
    std::vector<ColumnRef> prefix(ob.begin(), ob.begin() + len);
    add(OrderProperty(std::move(prefix)), OrderSource::kOrderBy, -1);
  }

  // GROUP BY: the full grouping set, plus per-table projections (pushdown).
  const auto& gb = graph.group_by();
  if (!gb.empty()) {
    add(OrderProperty(gb), OrderSource::kGroupBy, -1);
    std::map<int, std::vector<ColumnRef>> per_table;
    for (const ColumnRef& c : gb) per_table[c.table].push_back(c);
    if (per_table.size() > 1) {
      for (auto& [t, cols] : per_table) {
        (void)t;
        add(OrderProperty(std::move(cols)), OrderSource::kGroupBy, -1);
      }
    }
  }
}

bool InterestingOrders::ActiveFor(const OrderInterest& i, TableSet s) const {
  if (!s.ContainsAll(i.tables)) return false;  // columns not yet available
  if (i.source == OrderSource::kJoin) {
    const JoinPredicate& p = graph_.join_predicates()[i.pred_index];
    // Retired once the predicate has been applied inside `s`.
    if (s.Contains(p.left.table) && s.Contains(p.right.table)) return false;
  }
  return true;
}

std::vector<const OrderInterest*> InterestingOrders::ActiveInterests(
    TableSet s) const {
  std::vector<const OrderInterest*> out;
  ActiveInterests(s, &out);
  return out;
}

void InterestingOrders::ActiveInterests(
    TableSet s, std::vector<const OrderInterest*>* out) const {
  out->clear();
  for (const OrderInterest& i : interests_) {
    if (ActiveFor(i, s)) out->push_back(&i);
  }
}

bool InterestingOrders::Useful(const OrderProperty& order, TableSet s,
                               const ColumnEquivalence& equiv) const {
  OrderProperty canon_scratch;
  return Useful(order, s, equiv, &canon_scratch);
}

bool InterestingOrders::Useful(const OrderProperty& order, TableSet s,
                               const ColumnEquivalence& equiv,
                               OrderProperty* canon_scratch) const {
  if (order.IsNone()) return false;
  for (const OrderInterest& i : interests_) {
    if (!ActiveFor(i, s)) continue;
    i.order.CanonicalizeInto(equiv, canon_scratch);
    bool satisfied = (i.source == OrderSource::kGroupBy)
                         ? order.SatisfiesSet(*canon_scratch)
                         : order.SatisfiesPrefix(*canon_scratch);
    if (satisfied) return true;
  }
  return false;
}

}  // namespace cote
