#include "optimizer/properties/order_property.h"

#include <algorithm>

#include "common/str_util.h"

namespace cote {

OrderProperty OrderProperty::Canonicalize(const ColumnEquivalence& equiv) const {
  OrderProperty out;
  CanonicalizeInto(equiv, &out);
  return out;
}

void OrderProperty::CanonicalizeInto(const ColumnEquivalence& equiv,
                                     OrderProperty* out) const {
  std::vector<ColumnRef>& out_cols = out->columns_;
  out_cols.clear();
  for (const ColumnRef& c : columns_) {
    ColumnRef rep = equiv.Find(c);
    if (std::find(out_cols.begin(), out_cols.end(), rep) == out_cols.end()) {
      out_cols.push_back(rep);
    }
  }
}

bool OrderProperty::SatisfiesPrefix(const OrderProperty& required) const {
  if (required.size() > size()) return false;
  for (int i = 0; i < required.size(); ++i) {
    if (columns_[i] != required.columns_[i]) return false;
  }
  return true;
}

bool OrderProperty::SatisfiesSet(const OrderProperty& required) const {
  if (required.size() > size()) return false;
  for (int i = 0; i < required.size(); ++i) {
    const ColumnRef& c = columns_[i];
    if (std::find(required.columns_.begin(), required.columns_.end(), c) ==
        required.columns_.end()) {
      return false;
    }
  }
  // The prefix columns are all members of `required` and (being distinct)
  // there are required.size() of them, so they form exactly that set.
  return true;
}

OrderProperty OrderProperty::Extend(const OrderProperty& suffix) const {
  std::vector<ColumnRef> out = columns_;
  for (const ColumnRef& c : suffix.columns_) {
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return OrderProperty(std::move(out));
}

std::vector<int> OrderProperty::Tables() const {
  std::vector<int> out;
  for (const ColumnRef& c : columns_) {
    if (std::find(out.begin(), out.end(), c.table) == out.end()) {
      out.push_back(static_cast<int>(c.table));
    }
  }
  return out;
}

std::string OrderProperty::ToString() const {
  if (IsNone()) return "DC";
  std::vector<std::string> parts;
  for (const ColumnRef& c : columns_) parts.push_back(c.ToString());
  return "(" + Join(parts, ",") + ")";
}

}  // namespace cote
