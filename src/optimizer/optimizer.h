#ifndef COTE_OPTIMIZER_OPTIMIZER_H_
#define COTE_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "common/status.h"
#include "optimizer/cost/cost_model.h"
#include "optimizer/enumerator.h"
#include "optimizer/plan_generator.h"
#include "optimizer/stats.h"
#include "query/query_graph.h"

namespace cote {

/// Optimization levels in the sense of §1.1: a cheap polynomial "low"
/// level and a dynamic-programming "high" level whose search space is
/// further shaped by the enumerator knobs.
enum class OptimizationLevel {
  kLow,   ///< greedy join ordering, single plan, no properties
  kHigh,  ///< full DP enumeration with physical properties
};

/// \brief All configuration of one optimizer instance.
struct OptimizerOptions {
  OptimizationLevel level = OptimizationLevel::kHigh;
  EnumeratorOptions enumeration;
  PlanGenOptions plangen;
  CostParams cost;
  /// Number of shared-nothing nodes; > 1 selects parallel planning.
  int num_nodes = 1;

  /// Convenience factory for the parallel configuration used throughout
  /// the paper's experiments (4 logical nodes).
  static OptimizerOptions Parallel(int nodes = 4) {
    OptimizerOptions o;
    o.num_nodes = nodes;
    return o;
  }
};

/// \brief Result of one compilation: the chosen plan plus instrumentation.
struct OptimizeResult {
  const Plan* best_plan = nullptr;
  OptimizeStats stats;
  /// Owns every plan (including best_plan); keep it alive while plans are
  /// inspected. Shared so results are cheap to copy around benches.
  std::shared_ptr<Memo> memo;
};

/// \brief The full query optimizer facade.
///
/// Usage:
///   Optimizer opt(options);
///   StatusOr<OptimizeResult> result = opt.Optimize(graph);
///
/// Optimize() runs base-plan generation, DP join enumeration with plan
/// generation (or the greedy pass at kLow), and query completion (final
/// sort / group-by planning), and reports detailed per-phase statistics.
class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = {});

  StatusOr<OptimizeResult> Optimize(const QueryGraph& graph) const;

 private:
  StatusOr<OptimizeResult> OptimizeHigh(const QueryGraph& graph) const;
  StatusOr<OptimizeResult> OptimizeLow(const QueryGraph& graph) const;

  OptimizerOptions options_;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_OPTIMIZER_H_
