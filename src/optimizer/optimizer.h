#ifndef COTE_OPTIMIZER_OPTIMIZER_H_
#define COTE_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "common/resource_budget.h"
#include "common/status.h"
#include "optimizer/cost/cost_model.h"
#include "optimizer/enumerator.h"
#include "optimizer/plan_generator.h"
#include "optimizer/stats.h"
#include "query/query_graph.h"

namespace cote {

/// Optimization levels in the sense of §1.1: a cheap polynomial "low"
/// level and a dynamic-programming "high" level whose search space is
/// further shaped by the enumerator knobs.
enum class OptimizationLevel {
  kLow,   ///< greedy join ordering, single plan, no properties
  kHigh,  ///< full DP enumeration with physical properties
};

/// \brief All configuration of one optimizer instance.
struct OptimizerOptions {
  OptimizationLevel level = OptimizationLevel::kHigh;
  EnumeratorOptions enumeration;
  PlanGenOptions plangen;
  CostParams cost;
  /// Number of shared-nothing nodes; > 1 selects parallel planning.
  int num_nodes = 1;

  /// Worker threads for the bottom-up join enumeration itself (orthogonal
  /// to num_nodes, which parallelizes the *planned* execution). 1 compiles
  /// through the exact serial code path; > 1 partitions each popcount rank
  /// across a worker team (see optimizer/parallel_enumerator.h) with plan
  /// choice bit-identical to serial. Applies only to kBottomUp enumeration
  /// of queries with 2..kGosperPartitionMaxTables tables; everything else
  /// silently runs serial.
  int parallel_workers = 1;

  /// Convenience factory for the parallel configuration used throughout
  /// the paper's experiments (4 logical nodes).
  static OptimizerOptions Parallel(int nodes = 4) {
    OptimizerOptions o;
    o.num_nodes = nodes;
    return o;
  }

  /// Reconciles the three parallelism knobs (num_nodes, plangen.parallel,
  /// cost.num_nodes) so the cost model and plan generation agree on the
  /// node count. Called once when a CompilationSession adopts the options,
  /// so the optimize and estimate paths see identical configurations.
  ///
  /// Rules (pinned by OptimizerOptionsTest):
  ///  * num_nodes > 1 wins: it switches parallel plan generation on and
  ///    propagates the node count into the cost model;
  ///  * plangen.parallel set without any node count (num_nodes <= 1 and
  ///    cost.num_nodes <= 1) defaults BOTH node counts to 4 — the paper's
  ///    experimental configuration;
  ///  * quirk, kept deliberately: plangen.parallel with cost.num_nodes > 1
  ///    but num_nodes <= 1 leaves num_nodes at 1 and trusts the cost
  ///    model's count — callers who set cost.num_nodes directly have
  ///    already chosen their environment.
  void Normalize() {
    if (num_nodes > 1) {
      plangen.parallel = true;
      cost.num_nodes = num_nodes;
    } else if (plangen.parallel && cost.num_nodes <= 1) {
      cost.num_nodes = 4;
      num_nodes = 4;
    }
    if (parallel_workers < 1) parallel_workers = 1;
  }
};

/// \brief Result of one compilation: the chosen plan plus instrumentation.
struct OptimizeResult {
  const Plan* best_plan = nullptr;
  OptimizeStats stats;
  /// Owns every plan (including best_plan); keep it alive while plans are
  /// inspected. Shared so results are cheap to copy around benches.
  std::shared_ptr<Memo> memo;
  /// Resource governance outcome: true when a budget tripped mid-compile
  /// and the session fell back to the greedy (kLow-style) join order. The
  /// result is still a valid executable plan — just not the DP optimum.
  bool degraded = false;
  /// Which limit tripped (kNone when not degraded) and in which pipeline
  /// stage the trip was detected.
  BudgetLimit tripped_limit = BudgetLimit::kNone;
  CompileStage degraded_stage = CompileStage::kNone;
};

class CompilationSession;

/// \brief The full query optimizer facade.
///
/// Usage:
///   Optimizer opt(options);
///   StatusOr<OptimizeResult> result = opt.Optimize(graph);
///
/// Optimize() runs base-plan generation, DP join enumeration with plan
/// generation (or the greedy pass at kLow), and query completion (final
/// sort / group-by planning), and reports detailed per-phase statistics.
///
/// Internally this is a thin veneer over a private CompilationSession
/// (src/session/): the session keeps the cost/cardinality models and
/// scratch state warm across Optimize() calls, so compiling a workload
/// through one Optimizer is cheaper than fresh construction per query
/// while producing bit-identical plans and stats. Like the rest of the
/// library, an Optimizer is not thread-safe.
class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = {});
  ~Optimizer();
  Optimizer(Optimizer&&) noexcept;
  Optimizer& operator=(Optimizer&&) noexcept;

  StatusOr<OptimizeResult> Optimize(const QueryGraph& graph) const;

 private:
  // Owned via pointer: optimizer.h cannot include session/session.h (the
  // session layer's types are defined in terms of OptimizerOptions).
  // Pointer constness is shallow, so const Optimize() can drive the
  // stateful session — the statefulness is pure reuse, not behavior.
  std::unique_ptr<CompilationSession> session_;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_OPTIMIZER_H_
