#include "optimizer/cost/cardinality.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace cote {

double CardinalityModel::BaseRows(int table_ref) const {
  const Table* t = graph_.table_ref(table_ref).table;
  double rows = t->row_count() * graph_.LocalSelectivity(table_ref);
  return std::max(rows, 0.1);
}

double CardinalityModel::JoinRows(TableSet s) const {
  if (s.size() == 1) return BaseRows(s.First());
  if (auto it = cache_.find(s.bits()); it != cache_.end()) return it->second;

  double rows = 1.0;
  for (int t : s) rows *= BaseRows(t);

  // Collect predicates fully inside `s`, grouped by equivalence class so
  // that derived (transitive-closure) duplicates are not double-counted:
  // a class spanning k columns inside `s` contributes its k-1 strongest
  // selectivities — a spanning tree of the class.
  const ColumnEquivalence& equiv = graph_.GlobalEquivalence();
  std::map<uint32_t, std::vector<double>> class_sels;
  std::map<uint32_t, TableSet> class_cols;  // distinct member columns seen
  std::vector<double> independent_sels;
  for (const JoinPredicate& p : graph_.join_predicates()) {
    if (!s.Contains(p.left.table) || !s.Contains(p.right.table)) continue;
    if (p.kind == JoinKind::kInner &&
        equiv.Equivalent(p.left, p.right)) {
      uint32_t cls = equiv.Find(p.left).Encode();
      class_sels[cls].push_back(p.selectivity);
      class_cols[cls] =
          class_cols[cls].With(p.left.table).With(p.right.table);
    } else {
      independent_sels.push_back(p.selectivity);
    }
  }
  for (auto& [cls, sels] : class_sels) {
    std::sort(sels.begin(), sels.end());
    int distinct_tables = class_cols[cls].size();
    int to_apply = std::min<int>(static_cast<int>(sels.size()),
                                 std::max(0, distinct_tables - 1));
    for (int i = 0; i < to_apply; ++i) rows *= sels[i];
  }
  for (double sel : independent_sels) rows *= sel;
  rows = std::max(rows, 0.01);

  if (!use_key_refinement_) {
    cache_.emplace(s.bits(), rows);
    return rows;
  }

  // Key refinement: a join predicate binding a unique column of table u
  // cannot yield more rows than the join of the remaining tables.
  for (const JoinPredicate& p : graph_.join_predicates()) {
    if (!s.Contains(p.left.table) || !s.Contains(p.right.table)) continue;
    for (const ColumnRef& side : {p.left, p.right}) {
      const Table* tab = graph_.table_ref(side.table).table;
      bool unique = tab->column(side.column).ndv >= tab->row_count() - 0.5;
      if (!unique) continue;
      TableSet rest = s.Minus(TableSet::Single(side.table));
      if (rest.empty()) continue;
      double rest_rows = JoinRows(rest);
      // The unique side's own filters still apply.
      double filter = graph_.LocalSelectivity(side.table);
      rows = std::min(rows, std::max(rest_rows * filter, 0.01));
    }
  }
  cache_.emplace(s.bits(), rows);
  return rows;
}

}  // namespace cote
