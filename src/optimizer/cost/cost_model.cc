#include "optimizer/cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace cote {

namespace {

double Log2Safe(double x) { return std::log2(std::max(x, 2.0)); }

}  // namespace

double CostModel::PagesFetched(double rows, double pages) const {
  if (pages <= 1.0) return 1.0;
  // Cardenas approximation of Yao's formula: distinct pages touched when
  // `rows` random rows are fetched from `pages` pages.
  double touched = pages * (1.0 - std::pow(1.0 - 1.0 / pages, rows));
  // Buffer-pool discount: pages beyond the pool miss every time; a small
  // iterative refinement mimics the layered buffer modeling of real
  // optimizers (this is genuine per-plan costing work).
  double hit_ratio = std::min(1.0, p_.buffer_pages / pages);
  for (int i = 0; i < 8; ++i) {
    hit_ratio = std::min(1.0, 0.5 * (hit_ratio +
                                     p_.buffer_pages /
                                         std::max(pages * (1.0 - hit_ratio / 2),
                                                  1.0)));
  }
  return touched * (1.0 - 0.5 * hit_ratio) + 1.0;
}

double CostModel::HistogramJoinFactor(double left_rows, double right_rows,
                                      int passes) const {
  if (p_.histogram_buckets <= 0) return 1.0;
  // Synthetic equi-depth histograms with mild Zipf-ish skew; per pass we
  // integrate bucket overlaps under a different boundary assumption. This
  // mirrors the per-plan statistical work of a commercial cost model.
  double factor = 0.0;
  const int buckets = p_.histogram_buckets;
  for (int pass = 0; pass < passes; ++pass) {
    double acc = 0.0;
    double lt = left_rows / buckets, rt = right_rows / buckets;
    for (int b = 0; b < buckets; ++b) {
      double skew = 1.0 + 0.5 / (1.0 + b + pass);
      double lo = lt * skew, ro = rt * (2.0 - skew * 0.5);
      double overlap = (lo < ro ? lo : ro) / (lo + ro + 1.0);
      acc += overlap * std::log1p(lo + ro);
    }
    factor += acc / buckets;
  }
  // Normalize to a correction near 1: the detail work refines, it does not
  // dominate, the analytic estimate.
  return 1.0 + 0.01 * factor / std::max(1, passes) /
                   std::log2(left_rows + right_rows + 4.0);
}

double CostModel::TableScan(const Table& table, double out_rows) const {
  double nodes = std::max(1, p_.num_nodes);
  double io = table.pages() / nodes * p_.io_page_cost;
  double cpu = table.row_count() / nodes * p_.cpu_row_cost;
  (void)out_rows;
  return io + cpu;
}

double CostModel::IndexScan(const Table& table, const Index& index,
                            double match_selectivity, double out_rows) const {
  double nodes = std::max(1, p_.num_nodes);
  double matched_rows = table.row_count() * match_selectivity / nodes;
  double leaf_pages =
      std::max(1.0, table.pages() * 0.05 * match_selectivity) / nodes;
  double height = Log2Safe(table.pages()) / 4.0 + 1.0;
  double data_io = PagesFetched(matched_rows, table.pages() / nodes);
  double cpu = matched_rows * p_.cpu_row_cost *
               (1.0 + 0.1 * static_cast<double>(index.key_columns.size()));
  (void)out_rows;
  return (height + leaf_pages + data_io) * p_.io_page_cost + cpu;
}

double CostModel::Sort(double rows, int key_columns) const {
  double nodes = std::max(1, p_.num_nodes);
  double local = rows / nodes;
  return local * Log2Safe(local) * p_.sort_row_factor *
         (1.0 + 0.05 * key_columns);
}

double CostModel::Nljn(double outer_rows, double outer_cost,
                       double inner_rows, double inner_cost) const {
  double nodes = std::max(1, p_.num_nodes);
  double per_probe =
      inner_cost / std::max(outer_rows, 1.0) +
      (inner_rows / nodes) * p_.cpu_row_cost * 0.1;
  // Rescan discount: repeated inner scans hit the buffer pool.
  double rescan_factor =
      0.2 + 0.8 / (1.0 + (inner_rows / nodes) / std::max(p_.buffer_pages, 1.0));
  return (outer_cost + inner_cost +
          (outer_rows / nodes) * per_probe * rescan_factor) *
         HistogramJoinFactor(outer_rows, inner_rows, 2);
}

double CostModel::IndexNljn(double outer_rows, double outer_cost,
                            const Table& inner_table, double out_rows) const {
  double nodes = std::max(1, p_.num_nodes);
  double height = Log2Safe(inner_table.pages()) / 4.0 + 1.0;
  // Upper index levels stay in the buffer pool; the leaf and data page
  // often miss.
  double probe_io = (0.25 * height + 1.0) * p_.io_page_cost *
                    (1.0 - 0.5 * std::min(1.0, p_.buffer_pages /
                                                   inner_table.pages()));
  double probe = probe_io + p_.cpu_row_cost;
  return (outer_cost + (outer_rows / nodes) * probe +
          (out_rows / nodes) * p_.cpu_row_cost * 0.1) *
         HistogramJoinFactor(outer_rows, inner_table.row_count(), 2);
}

double CostModel::Mgjn(double outer_rows, double outer_cost,
                       double inner_rows, double inner_cost,
                       double out_rows) const {
  double nodes = std::max(1, p_.num_nodes);
  double merge_cpu =
      ((outer_rows + inner_rows) / nodes) * p_.cpu_row_cost * 0.5 +
      (out_rows / nodes) * p_.cpu_row_cost * 0.2;
  return (outer_cost + inner_cost + merge_cpu) *
         HistogramJoinFactor(outer_rows, inner_rows, 5);
}

double CostModel::Hsjn(double probe_rows, double probe_cost,
                       double build_rows, double build_cost,
                       double out_rows) const {
  double nodes = std::max(1, p_.num_nodes);
  double build = (build_rows / nodes) * p_.hash_row_factor;
  double probe = (probe_rows / nodes) * p_.hash_row_factor * 0.6;
  // Spill penalty when the build side exceeds memory.
  double spill = 0.0;
  double mem_rows = p_.buffer_pages * 50.0;
  if (build_rows / nodes > mem_rows) {
    spill = ((build_rows + probe_rows) / nodes) * p_.cpu_row_cost * 0.5;
  }
  return (probe_cost + build_cost + build + probe +
          (out_rows / nodes) * p_.cpu_row_cost * 0.1 + spill) *
         HistogramJoinFactor(probe_rows, build_rows, 4);
}

double CostModel::Repartition(double rows) const {
  double nodes = std::max(1, p_.num_nodes);
  // Every row is hashed and (nodes-1)/nodes of them cross the network.
  double moved = rows * (nodes - 1) / nodes;
  return rows / nodes * p_.cpu_row_cost * 0.2 + moved * p_.network_row_cost;
}

double CostModel::Replicate(double rows) const {
  double nodes = std::max(1, p_.num_nodes);
  return rows * (nodes - 1) * p_.network_row_cost;
}

double CostModel::GroupBySort(double in_rows, double out_rows) const {
  return Sort(in_rows, 1) + (in_rows + out_rows) * p_.cpu_row_cost * 0.2;
}

double CostModel::GroupByHash(double in_rows, double out_rows) const {
  return in_rows * p_.hash_row_factor + out_rows * p_.cpu_row_cost * 0.2;
}

}  // namespace cote
