#ifndef COTE_OPTIMIZER_COST_CARDINALITY_H_
#define COTE_OPTIMIZER_COST_CARDINALITY_H_

#include <unordered_map>

#include "common/table_set.h"
#include "query/query_graph.h"

namespace cote {

/// \brief Estimates the output cardinality of (sub)queries.
///
/// Cardinality is a *logical* property: it depends only on the table set,
/// so the result is computed once per MEMO entry and cached by the caller
/// (§4 item 5 of the paper).
///
/// Two fidelity levels exist on purpose:
///  * the full model (`use_key_refinement = true`) exploits keys — a join
///    whose predicate binds a unique column cannot multiply rows beyond the
///    other input — as the real optimizer does;
///  * the simple model (`false`) skips this, exactly like the paper's
///    plan-estimate mode, whose "simpler" cardinalities occasionally flip
///    the cardinality-sensitive Cartesian-product heuristic and cause the
///    small join-count discrepancies reported in §5.2.
class CardinalityModel {
 public:
  CardinalityModel(const QueryGraph& graph, bool use_key_refinement)
      : graph_(graph), use_key_refinement_(use_key_refinement) {}

  /// Rows of a single table ref after local predicates.
  double BaseRows(int table_ref) const;

  /// Rows of the join result over table set `s` (all applicable join
  /// predicates applied, with at most one selectivity per column-
  /// equivalence pair to avoid double-counting transitive duplicates).
  double JoinRows(TableSet s) const;

  bool use_key_refinement() const { return use_key_refinement_; }

 private:
  const QueryGraph& graph_;
  bool use_key_refinement_;
  /// Key refinement recurses on subsets; memoize so each set is costed once.
  mutable std::unordered_map<uint64_t, double> cache_;
};

/// Memoize-on-entry helper shared by normal mode and estimate mode (§4
/// item 5): both visitors cache JoinRows(s) in their per-entry state the
/// first time the entry's cardinality is consulted. `*slot` is the
/// caller's per-entry cache field; negative means "not yet computed".
inline double MemoizedJoinRows(const CardinalityModel& model, TableSet s,
                               double* slot) {
  if (*slot < 0) *slot = model.JoinRows(s);
  return *slot;
}

}  // namespace cote

#endif  // COTE_OPTIMIZER_COST_CARDINALITY_H_
