#ifndef COTE_OPTIMIZER_COST_COST_MODEL_H_
#define COTE_OPTIMIZER_COST_COST_MODEL_H_

#include "catalog/table.h"

namespace cote {

/// \brief Tunable constants of the execution cost model.
struct CostParams {
  double io_page_cost = 1.0;      ///< cost of one page read
  double cpu_row_cost = 0.01;     ///< cost of processing one row
  double sort_row_factor = 0.02;  ///< per-row·log(rows) sort cost
  double hash_row_factor = 0.015; ///< per-row hash build/probe cost
  double network_row_cost = 0.03; ///< per-row cost of moving data
  double buffer_pages = 1000;     ///< buffer pool size (page reuse)
  int num_nodes = 1;              ///< shared-nothing fan-out (1 = serial)
  /// Buckets of the synthetic equi-depth histograms the cost model
  /// integrates over when costing joins. Commercial cost models spend most
  /// of plan-generation time in exactly this kind of per-plan detail work
  /// (histograms, buffer modeling, device models — §3.1), which is why the
  /// COTE's enumerate-only pass is comparatively free. 0 disables.
  int histogram_buckets = 128;
  /// Conversion from cost units to estimated execution seconds; used by the
  /// meta-optimizer to compare execution time against compilation time.
  double seconds_per_cost_unit = 1e-4;
};

/// \brief Execution cost estimation for plan operators.
///
/// Structurally realistic rather than calibrated: scans pay I/O with
/// buffer-hit discounts (an iterative Yao-style page-fetch approximation),
/// sorts pay n·log n, hash joins pay build+probe, and parallel operators
/// divide work across nodes but pay network cost to move rows. Estimating
/// a cost is deliberately non-trivial CPU work — in real systems the cost
/// model is the dominant expense of generating a plan (paper §3.1), which
/// is exactly why bypassing plan generation makes the COTE cheap.
class CostModel {
 public:
  explicit CostModel(const CostParams& params) : p_(params) {}

  const CostParams& params() const { return p_; }

  double TableScan(const Table& table, double out_rows) const;
  /// `match_selectivity` = fraction of the index matched by predicates.
  double IndexScan(const Table& table, const Index& index,
                   double match_selectivity, double out_rows) const;
  double Sort(double rows, int key_columns) const;
  /// `rescan` inner cost is paid per outer row with buffer-hit discount.
  double Nljn(double outer_rows, double outer_cost, double inner_rows,
              double inner_cost) const;
  /// Index nested-loops: each outer row probes an index of the inner base
  /// table instead of rescanning it.
  double IndexNljn(double outer_rows, double outer_cost,
                   const Table& inner_table, double out_rows) const;
  double Mgjn(double outer_rows, double outer_cost, double inner_rows,
              double inner_cost, double out_rows) const;
  double Hsjn(double probe_rows, double probe_cost, double build_rows,
              double build_cost, double out_rows) const;
  /// Hash-redistribution of `rows` across all nodes (parallel TQ operator).
  double Repartition(double rows) const;
  /// Broadcast of `rows` to every node.
  double Replicate(double rows) const;
  double GroupBySort(double in_rows, double out_rows) const;
  double GroupByHash(double in_rows, double out_rows) const;

  double CostToSeconds(double cost) const {
    return cost * p_.seconds_per_cost_unit;
  }

  /// Integrates two synthetic equi-depth histograms to refine the join
  /// overlap fraction — `passes` controls how many distribution aspects
  /// are modeled (skew, nulls, boundary effects). Returns a small
  /// correction factor near 1.0. Public for testing and calibration.
  double HistogramJoinFactor(double left_rows, double right_rows,
                             int passes) const;

 private:
  /// Yao-style estimate of distinct pages fetched when `rows` rows are
  /// picked from a table of `pages` pages, with buffer-pool reuse.
  double PagesFetched(double rows, double pages) const;

  CostParams p_;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_COST_COST_MODEL_H_
