#ifndef COTE_OPTIMIZER_GOSPER_PARTITION_H_
#define COTE_OPTIMIZER_GOSPER_PARTITION_H_

#include <cstdint>

namespace cote {

/// \file
/// Partitioning of one popcount rank of the Gosper-ordered mask space.
///
/// The bottom-up enumerator visits the masks of each rank k in ascending
/// numeric order (Gosper's hack). The parallel enumerator splits that
/// sequence into one contiguous slice per worker: slices are balanced to
/// within one mask, ordered by worker index, and jointly cover the rank
/// exactly once. Because worker w's slice precedes worker w+1's in mask
/// order, merging per-worker results in worker order replays the serial
/// creation order — the keystone of the bit-identical-plan guarantee.
///
/// Unranking uses the colexicographic combinadic: the m-th smallest n-bit
/// mask with popcount k is found by scanning bits from n-1 down and taking
/// bit b exactly when C(b, k) <= m (then m -= C(b, k), --k). All binomials
/// are precomputed up to n = kGosperPartitionMaxTables, the flat-bitmap
/// ceiling of the enumerator; the parallel path is gated to that range.

/// Largest table count the partitioner supports (matches the enumerator's
/// flat existence-bitmap ceiling).
inline constexpr int kGosperPartitionMaxTables = 20;

/// Number of n-bit masks with popcount k: C(n, k). Requires
/// 0 <= k <= n <= kGosperPartitionMaxTables.
int64_t GosperRankSize(int n, int k);

/// The m-th (0-based) smallest n-bit mask with popcount k. Requires
/// 0 <= m < GosperRankSize(n, k) and k >= 1.
uint64_t GosperUnrank(int n, int k, int64_t m);

/// One worker's contiguous slice of a rank: `count` masks starting at
/// `first_mask`, advanced with Gosper's hack. count == 0 means the worker
/// has no masks in this rank (first_mask is then meaningless).
struct GosperSlice {
  uint64_t first_mask = 0;
  int64_t count = 0;
};

/// Balanced contiguous slice of rank (n, k) for `worker` of `num_workers`:
/// the first (C(n,k) mod W) workers get one extra mask. Requires
/// 0 <= worker < num_workers and 1 <= k <= n <= kGosperPartitionMaxTables.
GosperSlice PartitionGosperRank(int n, int k, int worker, int num_workers);

}  // namespace cote

#endif  // COTE_OPTIMIZER_GOSPER_PARTITION_H_
