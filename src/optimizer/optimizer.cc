#include "optimizer/optimizer.h"

#include "session/session.h"

namespace cote {

// This TU is deliberately thin: the actual staged compilation — bind,
// enumerate, complete, finalize — lives in src/session/pipeline.cc, and
// the models it consults live in the session's CompilationContext. The
// Optimizer type survives as the stable public facade (and keeps its
// session warm across Optimize() calls).

Optimizer::Optimizer(OptimizerOptions options)
    : session_(std::make_unique<CompilationSession>(std::move(options))) {}

Optimizer::~Optimizer() = default;
Optimizer::Optimizer(Optimizer&&) noexcept = default;
Optimizer& Optimizer::operator=(Optimizer&&) noexcept = default;

StatusOr<OptimizeResult> Optimizer::Optimize(const QueryGraph& graph) const {
  return session_->Optimize(graph);
}

}  // namespace cote
