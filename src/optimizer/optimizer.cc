#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "optimizer/greedy_optimizer.h"
#include "optimizer/properties/interesting_orders.h"

namespace cote {

Optimizer::Optimizer(OptimizerOptions options) : options_(std::move(options)) {
  // Keep the cost model and plan generation consistent with num_nodes.
  if (options_.num_nodes > 1) {
    options_.plangen.parallel = true;
    options_.cost.num_nodes = options_.num_nodes;
  } else if (options_.plangen.parallel && options_.cost.num_nodes <= 1) {
    options_.cost.num_nodes = 4;
    options_.num_nodes = 4;
  }
}

StatusOr<OptimizeResult> Optimizer::Optimize(const QueryGraph& graph) const {
  if (graph.num_tables() == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  return options_.level == OptimizationLevel::kLow ? OptimizeLow(graph)
                                                   : OptimizeHigh(graph);
}

StatusOr<OptimizeResult> Optimizer::OptimizeLow(const QueryGraph& graph) const {
  StopWatch watch;
  OptimizeResult result;
  result.memo = std::make_shared<Memo>(graph);
  CostModel cost(options_.cost);
  CardinalityModel card(graph, /*use_key_refinement=*/true);
  GreedyOptimizer greedy(graph, cost, card, result.memo.get());
  result.best_plan = greedy.Run();
  if (result.best_plan == nullptr) {
    return Status::Internal("greedy optimizer produced no plan");
  }
  result.stats.best_cost = result.best_plan->cost;
  result.stats.plans_stored = 0;
  result.stats.total_seconds = watch.ElapsedSeconds();
  return result;
}

StatusOr<OptimizeResult> Optimizer::OptimizeHigh(
    const QueryGraph& graph) const {
  StopWatch watch;
  OptimizeResult result;
  result.memo = std::make_shared<Memo>(graph);
  Memo* memo = result.memo.get();

  CostModel cost(options_.cost);
  CardinalityModel card(graph, /*use_key_refinement=*/true);
  InterestingOrders interesting(graph);
  PlanGenerator generator(graph, memo, cost, card, interesting,
                          options_.plangen);

  StopWatch enum_watch;
  result.stats.enumeration =
      RunEnumeration(graph, options_.enumeration, &generator);
  double run_seconds = enum_watch.ElapsedSeconds();

  MemoEntry* top = memo->Find(graph.AllTables());
  if (top == nullptr || top->Cheapest() == nullptr) {
    return Status::Internal(
        "no complete plan: join graph is disconnected and Cartesian "
        "products are disabled");
  }

  // ---- Query completion ("other" work: aggregation and final ordering).
  //
  // For first-n-rows queries the pipelinable property pays off here: a
  // pipelinable plan only executes the fraction of its input needed to
  // produce n rows, so plans are compared on that discounted cost.
  auto effective_cost = [&graph](const Plan* p) {
    if (!graph.wants_first_rows() || !p->pipelinable) return p->cost;
    double fraction = static_cast<double>(graph.fetch_first()) /
                      std::max(p->rows, 1.0);
    return p->cost * std::clamp(fraction, 0.01, 1.0);
  };
  const Plan* best = top->Cheapest();
  if (graph.wants_first_rows() && !graph.has_aggregation()) {
    for (const Plan* p : top->plans()) {
      if (effective_cost(p) < effective_cost(best)) best = p;
    }
  }

  if (graph.has_aggregation()) {
    const auto& gb = graph.group_by();
    double in_rows = top->cardinality();
    double out_rows = in_rows;
    if (!gb.empty()) {
      double groups = 1.0;
      for (const ColumnRef& c : gb) groups *= graph.ColumnNdv(c);
      out_rows = std::min(in_rows, std::max(1.0, groups));
    }
    // Two group-by plans per aggregation: sort-based and hash-based (§3).
    OrderProperty gb_order =
        OrderProperty(gb).Canonicalize(top->equivalence());
    const Plan* sorted_in = nullptr;
    for (const Plan* p : top->plans()) {
      if (gb.empty() || p->order.SatisfiesSet(gb_order)) {
        if (sorted_in == nullptr || p->cost < sorted_in->cost) sorted_in = p;
      }
    }
    double sort_based_cost;
    const Plan* sort_child;
    if (sorted_in != nullptr) {
      sort_based_cost = sorted_in->cost + cost.GroupBySort(in_rows, out_rows);
      sort_child = sorted_in;
    } else {
      sort_based_cost = best->cost + cost.Sort(in_rows, gb_order.size()) +
                        cost.GroupBySort(in_rows, out_rows);
      sort_child = best;
    }
    double hash_based_cost = best->cost + cost.GroupByHash(in_rows, out_rows);

    Plan* agg = memo->NewPlan();
    agg->tables = graph.AllTables();
    agg->rows = out_rows;
    if (sort_based_cost <= hash_based_cost) {
      agg->op = OpType::kGroupBySort;
      agg->cost = sort_based_cost;
      agg->child = sort_child;
      agg->order = sort_child->order;
      // Streams when the input was already sorted (no extra SORT).
      agg->pipelinable = (sorted_in != nullptr) && sort_child->pipelinable;
    } else {
      agg->op = OpType::kGroupByHash;
      agg->cost = hash_based_cost;
      agg->child = best;
      agg->order = OrderProperty::None();
      agg->pipelinable = false;  // hash aggregation materializes
    }
    agg->partition = agg->child->partition;
    best = agg;
  }

  if (!graph.order_by().empty()) {
    OrderProperty ob =
        OrderProperty(graph.order_by()).Canonicalize(top->equivalence());
    if (!best->order.SatisfiesPrefix(ob)) {
      // Prefer a naturally ordered top plan when no aggregation intervened.
      const Plan* ordered = graph.has_aggregation()
                                ? nullptr
                                : top->CheapestSatisfying(
                                      ob, PartitionProperty::Serial());
      if (ordered != nullptr && ordered->cost < best->cost + 1e-12) {
        best = ordered;
      } else {
        Plan* sort = memo->NewPlan();
        sort->op = OpType::kSort;
        sort->tables = graph.AllTables();
        sort->rows = best->rows;
        sort->cost = best->cost + cost.Sort(best->rows, ob.size());
        sort->order = ob;
        sort->partition = best->partition;
        sort->pipelinable = false;
        sort->child = best;
        best = sort;
      }
    }
  }

  result.best_plan = best;

  // ---- Statistics.
  OptimizeStats& st = result.stats;
  st.join_plans_generated = generator.join_plans_generated();
  st.enforcer_plans = generator.enforcer_plans();
  st.scan_plans = generator.scan_plans();
  st.pruned_by_pilot = generator.pruned_by_pilot();
  st.plans_stored = memo->plans_stored();
  st.memo_entries = memo->num_entries();
  st.memo_bytes = memo->ApproxMemoryBytes();
  st.best_cost = best->cost;
  for (int m = 0; m < kNumJoinMethods; ++m) {
    st.gen_seconds[m] =
        generator.gen_time(static_cast<JoinMethod>(m)).TotalSeconds();
  }
  st.save_seconds = generator.save_time().TotalSeconds();
  st.init_seconds = generator.init_time().TotalSeconds();
  st.enum_seconds = std::max(0.0, run_seconds - generator.visitor_seconds());
  st.total_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cote
