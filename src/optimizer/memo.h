#ifndef COTE_OPTIMIZER_MEMO_H_
#define COTE_OPTIMIZER_MEMO_H_

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/flat_set_index.h"
#include "common/resource_budget.h"
#include "common/table_set.h"
#include "common/timer.h"
#include "optimizer/plan/plan.h"
#include "query/equivalence.h"
#include "query/query_graph.h"

namespace cote {

class MemoShard;

/// \brief One MEMO entry: all non-pruned plans for a set of tables.
///
/// Besides the plan list, the entry caches the *logical* properties of the
/// expression: output cardinality and the column-equivalence relation
/// induced by the predicates applied inside the set (computed once per
/// entry — the paper's "property caching", §3.2).
class MemoEntry {
 public:
  MemoEntry(TableSet set, const QueryGraph& graph);
  /// Arena-construction path (used by Memo through the deque allocator,
  /// hence public): `pred_scratch` (may be null) is a reusable buffer for
  /// the internal-predicate gather.
  MemoEntry(TableSet set, const QueryGraph& graph,
            std::vector<int>* pred_scratch);

  TableSet set() const { return set_; }
  const ColumnEquivalence& equivalence() const { return equiv_; }

  bool outer_enabled() const { return outer_enabled_; }

  /// Cached output cardinality; negative until set by the visitor.
  double cardinality() const { return cardinality_; }
  void set_cardinality(double c) { cardinality_ = c; }
  /// Writable cache slot for MemoizedJoinRows (negative = not computed).
  double* mutable_cardinality() { return &cardinality_; }

  const std::vector<const Plan*>& plans() const { return plans_; }

  /// Cheapest plan regardless of properties; nullptr if empty.
  const Plan* Cheapest() const;

  /// Cheapest plan whose order prefix-satisfies `required_order` (pass
  /// None() for "don't care") and whose partition satisfies
  /// `required_partition`. nullptr if none qualifies.
  const Plan* CheapestSatisfying(const OrderProperty& required_order,
                                 const PartitionProperty& required_partition)
      const;

 private:
  friend class Memo;
  friend class MemoShard;

  TableSet set_;
  double cardinality_ = -1;
  bool outer_enabled_ = true;
  ColumnEquivalence equiv_;
  std::vector<const Plan*> plans_;
};

/// \brief The dynamic-programming MEMO structure (§2.1).
///
/// Owns all plans in an arena (stable pointers). Insertion applies
/// cost+property pruning: a plan is dominated by a cheaper-or-equal plan
/// whose order and partition are at least as general. The "plan saving"
/// time the paper's Figure 2 charges at 16% is exactly the time spent in
/// Insert(), which callers may measure via the save timer.
///
/// Entry lookup is flat (FlatSetIndex): for queries of up to 20 tables
/// the table-set mask indexes a dense int32 array directly, so the
/// Find() on the enumeration hot path is one load; entries themselves are
/// arena-allocated in a deque (stable pointers, no per-entry heap
/// allocation).
class Memo {
 public:
  explicit Memo(const QueryGraph& graph) : graph_(graph) {}
  ~Memo();
  Memo(const Memo&) = delete;
  Memo& operator=(const Memo&) = delete;

  /// Finds or creates the entry for `s`; `created` reports which happened.
  MemoEntry* GetOrCreate(TableSet s, bool* created = nullptr);
  MemoEntry* Find(TableSet s);
  const MemoEntry* Find(TableSet s) const;

  /// Allocates a plan node from the arena (counted as "generated");
  /// charges an attached budget.
  Plan* NewPlan();

  /// Attaches a resource budget charged one plan per NewPlan() call
  /// (plans *generated*, the paper's Figure 5 quantity — pruning happens
  /// after generation, so stored-plan counts would undercharge). Null
  /// detaches. The pipeline must detach before handing the memo to a
  /// result, because results outlive the budget.
  void set_budget(ResourceBudget* budget) { budget_ = budget; }

  /// Inserts with pruning; returns true if the plan survived.
  bool Insert(MemoEntry* entry, Plan* plan);

  int64_t num_entries() const {
    return static_cast<int64_t>(creation_order_.size());
  }
  int64_t plans_allocated() const { return plans_allocated_; }
  int64_t plans_stored() const;

  /// Actual bytes held by MEMO plan lists (stored plans only) — the
  /// quantity the §6.2 memory estimator lower-bounds.
  int64_t ApproxMemoryBytes() const;

  /// Iteration over entries (deterministic order of creation).
  const std::vector<MemoEntry*>& entries_in_order() const {
    return creation_order_;
  }

  // ---- Parallel enumeration support ---------------------------------
  //
  // During one popcount rank, each worker fills a private MemoShard: own
  // entry/plan arenas, own budget, no shared mutable state. At the rank
  // barrier the coordinator calls AdoptShardRank(), which splices every
  // shard-created entry into this memo's index and creation order, in
  // shard order. Worker slices are contiguous in ascending mask order
  // (gosper_partition.h), so adoption in shard order replays the exact
  // serial creation order — dense ids, entry iteration order, and plan
  // lists all come out bit-identical to a serial run.

  /// Creates (or tops up to) `count` shards. Shards — and everything they
  /// allocate — are owned by this memo, so merged entries and plans share
  /// the memo's lifetime.
  void PrepareShards(int count);
  MemoShard* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Adopts everything the shards created since the previous adoption and
  /// folds their plans_allocated counts. Caller-side (single-threaded)
  /// half of the rank barrier.
  void AdoptShardRank();

 private:
  friend class MemoShard;

  /// Shared pruning-insert used by Memo::Insert and MemoShard::Insert so
  /// the dominance rules (and hence plan-list order and tie-breaking)
  /// cannot diverge between the serial and sharded paths.
  static bool InsertPruned(bool track_pipeline, MemoEntry* entry, Plan* plan);

  /// The set index is sized from graph_.num_tables(), so it is built on
  /// first use rather than at construction (callers may construct the
  /// Memo before the graph is final).
  FlatSetIndex& Index() const;

  const QueryGraph& graph_;
  mutable std::optional<FlatSetIndex> index_;
  std::deque<MemoEntry> entry_arena_;
  std::vector<MemoEntry*> creation_order_;
  std::deque<Plan> arena_;
  std::vector<int> pred_scratch_;
  int64_t plans_allocated_ = 0;
  /// Optional governance; never owned, cleared by the pipeline before the
  /// memo escapes into an OptimizeResult.
  ResourceBudget* budget_ = nullptr;
  /// Parallel-enumeration shards (empty on the serial path). unique_ptr
  /// keeps MemoShard an incomplete type here; the destructor lives in
  /// memo.cc where it is complete.
  std::vector<std::unique_ptr<MemoShard>> shards_;
};

/// \brief One worker's private view of a Memo during a parallel rank.
///
/// Presents the same surface PlanGeneratorT needs (Find / GetOrCreate /
/// NewPlan / Insert / set_budget), but:
///  * lookups of lower-rank sets resolve read-only through the parent
///    memo, which is complete up to rank k-1 at every point inside rank k
///    (the rank barrier's invariant);
///  * the entry currently being filled is served from a one-slot cache —
///    a worker only ever touches its own current mask within a rank;
///  * creations go to shard-private arenas and are logged for adoption.
///
/// Plans are charged to the shard's budget (the worker's private
/// ResourceBudget), never the parent's.
class MemoShard {
 public:
  explicit MemoShard(Memo* parent) : parent_(parent) {}
  MemoShard(const MemoShard&) = delete;
  MemoShard& operator=(const MemoShard&) = delete;

  MemoEntry* GetOrCreate(TableSet s, bool* created = nullptr);
  MemoEntry* Find(TableSet s);
  const MemoEntry* Find(TableSet s) const;
  Plan* NewPlan();
  bool Insert(MemoEntry* entry, Plan* plan);
  void set_budget(ResourceBudget* budget) { budget_ = budget; }

 private:
  friend class Memo;

  Memo* parent_;
  std::deque<MemoEntry> entry_arena_;
  std::deque<Plan> arena_;
  /// Entries created this rank, in creation (= ascending mask) order;
  /// drained by Memo::AdoptShardRank.
  std::vector<MemoEntry*> created_;
  std::vector<int> pred_scratch_;
  /// One-slot cache for the mask this worker is currently filling.
  MemoEntry* current_ = nullptr;
  int64_t plans_allocated_ = 0;
  ResourceBudget* budget_ = nullptr;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_MEMO_H_
