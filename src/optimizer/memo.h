#ifndef COTE_OPTIMIZER_MEMO_H_
#define COTE_OPTIMIZER_MEMO_H_

#include <deque>
#include <optional>
#include <vector>

#include "common/flat_set_index.h"
#include "common/resource_budget.h"
#include "common/table_set.h"
#include "common/timer.h"
#include "optimizer/plan/plan.h"
#include "query/equivalence.h"
#include "query/query_graph.h"

namespace cote {

/// \brief One MEMO entry: all non-pruned plans for a set of tables.
///
/// Besides the plan list, the entry caches the *logical* properties of the
/// expression: output cardinality and the column-equivalence relation
/// induced by the predicates applied inside the set (computed once per
/// entry — the paper's "property caching", §3.2).
class MemoEntry {
 public:
  MemoEntry(TableSet set, const QueryGraph& graph);
  /// Arena-construction path (used by Memo through the deque allocator,
  /// hence public): `pred_scratch` (may be null) is a reusable buffer for
  /// the internal-predicate gather.
  MemoEntry(TableSet set, const QueryGraph& graph,
            std::vector<int>* pred_scratch);

  TableSet set() const { return set_; }
  const ColumnEquivalence& equivalence() const { return equiv_; }

  bool outer_enabled() const { return outer_enabled_; }

  /// Cached output cardinality; negative until set by the visitor.
  double cardinality() const { return cardinality_; }
  void set_cardinality(double c) { cardinality_ = c; }
  /// Writable cache slot for MemoizedJoinRows (negative = not computed).
  double* mutable_cardinality() { return &cardinality_; }

  const std::vector<const Plan*>& plans() const { return plans_; }

  /// Cheapest plan regardless of properties; nullptr if empty.
  const Plan* Cheapest() const;

  /// Cheapest plan whose order prefix-satisfies `required_order` (pass
  /// None() for "don't care") and whose partition satisfies
  /// `required_partition`. nullptr if none qualifies.
  const Plan* CheapestSatisfying(const OrderProperty& required_order,
                                 const PartitionProperty& required_partition)
      const;

 private:
  friend class Memo;

  TableSet set_;
  double cardinality_ = -1;
  bool outer_enabled_ = true;
  ColumnEquivalence equiv_;
  std::vector<const Plan*> plans_;
};

/// \brief The dynamic-programming MEMO structure (§2.1).
///
/// Owns all plans in an arena (stable pointers). Insertion applies
/// cost+property pruning: a plan is dominated by a cheaper-or-equal plan
/// whose order and partition are at least as general. The "plan saving"
/// time the paper's Figure 2 charges at 16% is exactly the time spent in
/// Insert(), which callers may measure via the save timer.
///
/// Entry lookup is flat (FlatSetIndex): for queries of up to 20 tables
/// the table-set mask indexes a dense int32 array directly, so the
/// Find() on the enumeration hot path is one load; entries themselves are
/// arena-allocated in a deque (stable pointers, no per-entry heap
/// allocation).
class Memo {
 public:
  explicit Memo(const QueryGraph& graph) : graph_(graph) {}
  Memo(const Memo&) = delete;
  Memo& operator=(const Memo&) = delete;

  /// Finds or creates the entry for `s`; `created` reports which happened.
  MemoEntry* GetOrCreate(TableSet s, bool* created = nullptr);
  MemoEntry* Find(TableSet s);
  const MemoEntry* Find(TableSet s) const;

  /// Allocates a plan node from the arena (counted as "generated");
  /// charges an attached budget.
  Plan* NewPlan();

  /// Attaches a resource budget charged one plan per NewPlan() call
  /// (plans *generated*, the paper's Figure 5 quantity — pruning happens
  /// after generation, so stored-plan counts would undercharge). Null
  /// detaches. The pipeline must detach before handing the memo to a
  /// result, because results outlive the budget.
  void set_budget(ResourceBudget* budget) { budget_ = budget; }

  /// Inserts with pruning; returns true if the plan survived.
  bool Insert(MemoEntry* entry, Plan* plan);

  int64_t num_entries() const {
    return static_cast<int64_t>(creation_order_.size());
  }
  int64_t plans_allocated() const { return plans_allocated_; }
  int64_t plans_stored() const;

  /// Actual bytes held by MEMO plan lists (stored plans only) — the
  /// quantity the §6.2 memory estimator lower-bounds.
  int64_t ApproxMemoryBytes() const;

  /// Iteration over entries (deterministic order of creation).
  const std::vector<MemoEntry*>& entries_in_order() const {
    return creation_order_;
  }

 private:
  /// The set index is sized from graph_.num_tables(), so it is built on
  /// first use rather than at construction (callers may construct the
  /// Memo before the graph is final).
  FlatSetIndex& Index() const;

  const QueryGraph& graph_;
  mutable std::optional<FlatSetIndex> index_;
  std::deque<MemoEntry> entry_arena_;
  std::vector<MemoEntry*> creation_order_;
  std::deque<Plan> arena_;
  std::vector<int> pred_scratch_;
  int64_t plans_allocated_ = 0;
  /// Optional governance; never owned, cleared by the pipeline before the
  /// memo escapes into an OptimizeResult.
  ResourceBudget* budget_ = nullptr;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_MEMO_H_
