#ifndef COTE_OPTIMIZER_GREEDY_OPTIMIZER_H_
#define COTE_OPTIMIZER_GREEDY_OPTIMIZER_H_

#include "optimizer/cost/cardinality.h"
#include "optimizer/cost/cost_model.h"
#include "optimizer/memo.h"
#include "query/query_graph.h"

namespace cote {

/// \brief The "low" optimization level: polynomial-time greedy join order.
///
/// Builds one left-deep plan by repeatedly joining in the connected table
/// that minimizes the intermediate cardinality, choosing the cheaper of
/// NLJN/HSJN at each step. This is the fast-but-possibly-poor optimizer a
/// meta-optimizer runs first (Figure 1): its plan provides the execution
/// cost estimate E that is compared with the COTE's estimated high-level
/// compilation time C.
class GreedyOptimizer {
 public:
  GreedyOptimizer(const QueryGraph& graph, const CostModel& cost_model,
                  const CardinalityModel& cardinality, Memo* memo)
      : graph_(graph), cost_(cost_model), card_(cardinality), memo_(memo) {}

  /// Returns the greedy plan (allocated from the memo's arena), or nullptr
  /// for an empty query.
  const Plan* Run();

 private:
  const Plan* ScanPlan(int table_ref);

  const QueryGraph& graph_;
  const CostModel& cost_;
  const CardinalityModel& card_;
  Memo* memo_;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_GREEDY_OPTIMIZER_H_
