#ifndef COTE_OPTIMIZER_PARALLEL_ENUMERATOR_H_
#define COTE_OPTIMIZER_PARALLEL_ENUMERATOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/resource_budget.h"
#include "common/worker_team.h"
#include "optimizer/enumerator.h"
#include "query/query_graph.h"

namespace cote {

/// \brief One parallel enumeration run's outcome.
struct ParallelEnumerationResult {
  /// Merged counters across all workers; bit-identical to a serial run
  /// when the run completes untripped.
  EnumerationStats stats;
  /// Σ over workers of in-rank busy wall time (rank-1 initialization and
  /// mask-slice processing; excludes dispatch and merges). On a single
  /// hardware thread this approaches — never reaches — the run's wall
  /// time, which is why the bench reports both (the gap is the merge +
  /// dispatch overhead; real speedup needs real cores).
  double busy_seconds = 0;
  int workers = 1;
};

/// \brief The driver's view of a sharded visitor.
///
/// One JoinVisitor per worker, each writing only worker-private state
/// during a rank, plus a coordinator-side merge that adopts everything
/// the shards created — called at every rank barrier, in worker order.
/// Worker slices are contiguous in ascending mask order, so merging in
/// worker order replays the serial creation order exactly.
class ShardedVisitor {
 public:
  virtual ~ShardedVisitor() = default;
  /// Worker w's private visitor (stable across the run).
  virtual JoinVisitor* Shard(int worker) = 0;
  /// Attaches/detaches worker w's private budget: everything the shard
  /// charges (plans, in particular) must land on this budget, never on a
  /// shared one. Called with nullptr at the end of every run.
  virtual void SetShardBudget(int worker, ResourceBudget* budget) = 0;
  /// Coordinator-side rank barrier: adopt all shard-created state, in
  /// worker order. Runs single-threaded.
  virtual void MergeRank() = 0;
};

/// \brief Rank-parallel bottom-up join enumerator.
///
/// Runs the same DP as JoinEnumerator, but partitions each popcount
/// rank's Gosper-ordered mask sequence across a persistent worker team
/// (gosper_partition.h). The shared existence bitmap is written only for
/// rank-k masks during rank k (workers own disjoint mask slices) and read
/// only for lower ranks, so in-rank accesses are race-free by
/// construction; the team's dispatch mutex provides the cross-rank
/// happens-before. All other mutable state is worker-private (the
/// ShardedVisitor contract) and merged at rank barriers.
///
/// Governance: each worker checks a private ResourceBudget, armed from
/// the master's limits at run start, once per mask; a trip raises the
/// shared cancel flag, which every worker polls per mask — so a deadline
/// or cap trip in one shard unwinds the whole team within one mask per
/// worker. Charge deltas are folded into the master budget at every rank
/// barrier (count caps therefore trip globally at rank granularity, or
/// mid-rank when a single shard alone exceeds them).
class ParallelEnumerator {
 public:
  explicit ParallelEnumerator(int workers);

  int workers() const { return workers_; }

  /// Runs the full enumeration; requires
  /// graph.num_tables() <= kGosperPartitionMaxTables (the caller gates).
  /// `budget` may be null or disarmed (ungoverned run).
  ParallelEnumerationResult Run(const QueryGraph& graph,
                                const EnumeratorOptions& options,
                                ShardedVisitor* sharded,
                                ResourceBudget* budget);

 private:
  struct WorkerSlot {
    std::vector<int> preds;
    EnumerationStats stats;
    double busy_seconds = 0;
    // Previous-rank budget counter snapshots, for delta folding.
    int64_t prev_entries = 0;
    int64_t prev_plans = 0;
    int64_t prev_checkpoints = 0;
  };

  static void RankThunk(void* ctx, int worker);
  /// Hot loop: one worker's slice of the current rank (the transplanted
  /// serial mask/split loop; see enumerator.cc for the invariants).
  void RunRankSlice(int worker);
  /// Folds every worker budget's per-rank charge delta into `master`.
  void FoldBudgets(ResourceBudget* master);

  const int workers_;
  WorkerTeam team_;
  std::vector<uint8_t> exists_;
  std::deque<ResourceBudget> budgets_;  // non-copyable; deque for stability
  std::deque<WorkerSlot> slots_;
  // The one shared flag of a run (tools/sync_inventory.json): workers
  // poll it per mask, any tripped shard sets it; relaxed order suffices
  // because the rank barrier provides the cross-thread edges.
  std::atomic<bool> cancel_{false};
  // Current-rank dispatch state: written by the coordinator before each
  // team round, read by workers during it (ordered by the team's mutex).
  const QueryGraph* rank_graph_ = nullptr;
  const EnumeratorOptions* rank_options_ = nullptr;
  ShardedVisitor* rank_sharded_ = nullptr;
  int rank_n_ = 0;
  int rank_k_ = 0;
  bool rank_armed_ = false;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_PARALLEL_ENUMERATOR_H_
