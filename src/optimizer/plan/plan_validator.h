#ifndef COTE_OPTIMIZER_PLAN_PLAN_VALIDATOR_H_
#define COTE_OPTIMIZER_PLAN_PLAN_VALIDATOR_H_

#include "common/status.h"
#include "optimizer/memo.h"
#include "optimizer/plan/plan.h"
#include "query/query_graph.h"

namespace cote {

/// \brief Structural invariant checker for plans and MEMO contents.
///
/// Used by the test suite as a deep property check over everything the
/// optimizer produces, and available to applications as a debugging aid.
/// Checked invariants:
///
///  * every node has positive rows, finite non-negative cost;
///  * a join's children are non-null, cover disjoint table sets whose
///    union is the join's set, and cost at least their children;
///  * unary operators preserve the table set; scans are leaf singletons;
///  * SORT carries a non-empty order and is not pipelinable; HSJN and
///    hash aggregation are not pipelinable; NLJN/MGJN pipeline exactly
///    when both inputs do; Repartition/Replicate carry matching partition
///    kinds;
///  * order columns reference tables inside the node's table set, and
///    partition key columns reference tables of the query;
///  * within a MEMO entry, every stored plan covers the entry's set and
///    no stored plan dominates another (the list is a Pareto frontier).
class PlanValidator {
 public:
  explicit PlanValidator(const QueryGraph& graph) : graph_(graph) {}

  /// Validates one plan subtree; returns the first violation found.
  Status ValidatePlan(const Plan* plan) const;

  /// Validates every plan stored in every entry of the MEMO.
  Status ValidateMemo(const Memo& memo) const;

 private:
  Status CheckNode(const Plan* p) const;

  const QueryGraph& graph_;
};

}  // namespace cote

#endif  // COTE_OPTIMIZER_PLAN_PLAN_VALIDATOR_H_
