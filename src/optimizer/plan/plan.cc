#include "optimizer/plan/plan.h"

#include "common/str_util.h"

namespace cote {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kTableScan:
      return "TableScan";
    case OpType::kIndexScan:
      return "IndexScan";
    case OpType::kSort:
      return "Sort";
    case OpType::kRepartition:
      return "Repartition";
    case OpType::kReplicate:
      return "Replicate";
    case OpType::kNljn:
      return "NLJN";
    case OpType::kMgjn:
      return "MGJN";
    case OpType::kHsjn:
      return "HSJN";
    case OpType::kGroupBySort:
      return "GroupBy(sort)";
    case OpType::kGroupByHash:
      return "GroupBy(hash)";
  }
  return "?";
}

std::string Plan::Describe() const {
  std::string out = StrFormat("%s %s rows=%.1f cost=%.2f order=%s",
                              OpTypeName(op), tables.ToString().c_str(), rows,
                              cost, order.ToString().c_str());
  if (partition.kind() != PartitionProperty::Kind::kSerial) {
    out += " part=" + partition.ToString();
  }
  return out;
}

std::string PrintPlan(const Plan* plan, int indent) {
  if (plan == nullptr) return std::string(indent, ' ') + "(null)\n";
  std::string out(indent, ' ');
  out += plan->Describe();
  out += "\n";
  if (plan->child != nullptr) out += PrintPlan(plan->child, indent + 2);
  if (plan->inner != nullptr) out += PrintPlan(plan->inner, indent + 2);
  return out;
}

}  // namespace cote
