#ifndef COTE_OPTIMIZER_PLAN_DOT_EXPORT_H_
#define COTE_OPTIMIZER_PLAN_DOT_EXPORT_H_

#include <string>

#include "optimizer/plan/plan.h"
#include "query/query_graph.h"

namespace cote {

/// \brief Graphviz DOT exporters for debugging and documentation.
///
/// Render with e.g.  `dot -Tsvg plan.dot -o plan.svg`.

/// The join graph: one node per table ref (label = alias), one edge per
/// join predicate (solid = written, dashed = derived by transitive
/// closure, open arrowhead = left outer toward the null-producing side).
std::string QueryGraphToDot(const QueryGraph& graph);

/// The plan tree: one node per operator with rows/cost/properties;
/// enforcers are drawn in a lighter style.
std::string PlanToDot(const Plan* root);

}  // namespace cote

#endif  // COTE_OPTIMIZER_PLAN_DOT_EXPORT_H_
