#include "optimizer/plan/dot_export.h"

#include <unordered_map>

#include "common/str_util.h"

namespace cote {

std::string QueryGraphToDot(const QueryGraph& graph) {
  std::string out = "graph join_graph {\n  node [shape=box];\n";
  for (int t = 0; t < graph.num_tables(); ++t) {
    const QueryTableRef& ref = graph.table_ref(t);
    out += StrFormat("  t%d [label=\"%s\\n(%s, %.0f rows)\"%s];\n", t,
                     ref.alias.c_str(), ref.table->name().c_str(),
                     ref.table->row_count(),
                     ref.inner_only ? " style=dashed" : "");
  }
  for (const JoinPredicate& p : graph.join_predicates()) {
    std::string attrs;
    if (p.derived) attrs += " style=dashed";
    if (p.kind == JoinKind::kLeftOuter) attrs += " color=gray dir=forward";
    out += StrFormat("  t%d -- t%d [label=\"%s=%s\"%s];\n",
                     static_cast<int>(p.left.table),
                     static_cast<int>(p.right.table),
                     graph.ColumnName(p.left).c_str(),
                     graph.ColumnName(p.right).c_str(), attrs.c_str());
  }
  out += "}\n";
  return out;
}

namespace {

bool IsEnforcer(OpType op) {
  return op == OpType::kSort || op == OpType::kRepartition ||
         op == OpType::kReplicate;
}

void EmitPlanNode(const Plan* p, std::string* out, int* next_id,
                  std::unordered_map<const Plan*, int>* ids) {
  if (p == nullptr || ids->count(p) > 0) return;
  int id = (*next_id)++;
  (*ids)[p] = id;
  std::string label = StrFormat("%s\\n%s\\nrows=%.1f cost=%.1f",
                                OpTypeName(p->op),
                                p->tables.ToString().c_str(), p->rows,
                                p->cost);
  if (!p->order.IsNone()) label += "\\norder=" + p->order.ToString();
  if (p->partition.kind() != PartitionProperty::Kind::kSerial) {
    label += "\\npart=" + p->partition.ToString();
  }
  *out += StrFormat("  n%d [label=\"%s\"%s];\n", id, label.c_str(),
                    IsEnforcer(p->op) ? " style=dotted" : "");
  for (const Plan* child : {p->child, p->inner}) {
    if (child == nullptr) continue;
    EmitPlanNode(child, out, next_id, ids);
    *out += StrFormat("  n%d -> n%d;\n", id, (*ids)[child]);
  }
}

}  // namespace

std::string PlanToDot(const Plan* root) {
  std::string out = "digraph plan {\n  node [shape=box];\n";
  int next_id = 0;
  std::unordered_map<const Plan*, int> ids;
  EmitPlanNode(root, &out, &next_id, &ids);
  out += "}\n";
  return out;
}

}  // namespace cote
