#include "optimizer/plan/plan_validator.h"

#include <cmath>

#include "common/str_util.h"

namespace cote {

namespace {

Status Violation(const Plan* p, const std::string& what) {
  return Status::Internal(what + " in: " + p->Describe());
}

}  // namespace

Status PlanValidator::CheckNode(const Plan* p) const {
  if (p == nullptr) return Status::Internal("null plan node");
  if (!(p->rows > 0) || !std::isfinite(p->rows)) {
    return Violation(p, "non-positive rows");
  }
  if (p->cost < 0 || !std::isfinite(p->cost)) {
    return Violation(p, "invalid cost");
  }
  if (p->tables.empty()) return Violation(p, "empty table set");

  // Order columns reference tables inside the node's set (equivalence
  // representatives are always drawn from applied predicates, whose
  // tables are inside the set).
  for (const ColumnRef& c : p->order.columns()) {
    if (!p->tables.Contains(c.table)) {
      return Violation(p, "order column outside table set");
    }
  }
  // Partition keys may canonicalize to either side of a join predicate,
  // but must reference real query tables.
  for (const ColumnRef& c : p->partition.columns()) {
    if (c.table < 0 || c.table >= graph_.num_tables()) {
      return Violation(p, "partition column outside query");
    }
  }

  switch (p->op) {
    case OpType::kTableScan:
    case OpType::kIndexScan:
      if (p->tables.size() != 1) return Violation(p, "scan of non-singleton");
      if (p->child != nullptr || p->inner != nullptr) {
        return Violation(p, "scan with children");
      }
      if (!p->pipelinable) return Violation(p, "non-pipelinable scan");
      if (p->op == OpType::kIndexScan) {
        const Table* t = graph_.table_ref(p->tables.First()).table;
        if (p->index_id < 0 ||
            p->index_id >= static_cast<int>(t->indexes().size())) {
          return Violation(p, "bad index id");
        }
      }
      break;
    case OpType::kSort:
      if (p->order.IsNone()) return Violation(p, "sort without order");
      if (p->pipelinable) return Violation(p, "pipelinable sort");
      break;
    case OpType::kRepartition:
      if (p->partition.kind() != PartitionProperty::Kind::kHash) {
        return Violation(p, "repartition without hash target");
      }
      break;
    case OpType::kReplicate:
      if (p->partition.kind() != PartitionProperty::Kind::kReplicated) {
        return Violation(p, "replicate without replicated output");
      }
      break;
    case OpType::kNljn:
    case OpType::kMgjn:
      if (p->child == nullptr || p->inner == nullptr) {
        return Violation(p, "join missing input");
      }
      if (p->pipelinable !=
          (p->child->pipelinable && p->inner->pipelinable)) {
        return Violation(p, "join pipeline flag inconsistent");
      }
      break;
    case OpType::kHsjn:
      if (p->child == nullptr || p->inner == nullptr) {
        return Violation(p, "join missing input");
      }
      if (p->pipelinable) return Violation(p, "pipelinable hash join");
      if (!p->order.IsNone()) return Violation(p, "ordered hash join");
      break;
    case OpType::kGroupByHash:
      if (p->pipelinable) return Violation(p, "pipelinable hash aggregate");
      break;
    case OpType::kGroupBySort:
      break;
  }

  if (p->IsJoin()) {
    if (p->child->tables.Overlaps(p->inner->tables)) {
      return Violation(p, "join inputs overlap");
    }
    if (p->child->tables.Union(p->inner->tables) != p->tables) {
      return Violation(p, "join inputs do not cover output");
    }
    if (p->cost + 1e-9 < p->child->cost) {
      return Violation(p, "join cheaper than its outer input");
    }
    // Index nested-loops (index_id >= 0): the inner is a parameterized
    // access path probed per row — its standalone scan cost is not paid.
    bool inl = p->op == OpType::kNljn && p->index_id >= 0;
    if (inl && p->inner->op != OpType::kIndexScan) {
      return Violation(p, "index nested-loops without index inner");
    }
    if (!inl && p->cost + 1e-9 < p->inner->cost) {
      return Violation(p, "join cheaper than its inner input");
    }
  } else if (p->child != nullptr) {
    if (p->child->tables != p->tables) {
      return Violation(p, "unary operator changes table set");
    }
    if (p->inner != nullptr) return Violation(p, "unary with two children");
    if (p->cost + 1e-9 < p->child->cost) {
      return Violation(p, "operator cheaper than its input");
    }
  }
  return Status::OK();
}

Status PlanValidator::ValidatePlan(const Plan* plan) const {
  COTE_RETURN_NOT_OK(CheckNode(plan));
  if (plan->child != nullptr) COTE_RETURN_NOT_OK(ValidatePlan(plan->child));
  if (plan->inner != nullptr) COTE_RETURN_NOT_OK(ValidatePlan(plan->inner));
  return Status::OK();
}

Status PlanValidator::ValidateMemo(const Memo& memo) const {
  const bool track_pipeline = graph_.wants_first_rows();
  for (const MemoEntry* entry : memo.entries_in_order()) {
    if (entry->cardinality() < 0) {
      return Status::Internal("entry " + entry->set().ToString() +
                              " has unset cardinality");
    }
    const auto& plans = entry->plans();
    for (size_t i = 0; i < plans.size(); ++i) {
      if (plans[i]->tables != entry->set()) {
        return Status::Internal("plan outside its entry: " +
                                plans[i]->Describe());
      }
      COTE_RETURN_NOT_OK(ValidatePlan(plans[i]));
      for (size_t k = 0; k < plans.size(); ++k) {
        if (i == k) continue;
        const Plan* q = plans[k];
        const Plan* p = plans[i];
        bool dominates = q->cost <= p->cost &&
                         q->order.SatisfiesPrefix(p->order) &&
                         q->partition.Satisfies(p->partition) &&
                         (!track_pipeline || q->pipelinable ||
                          !p->pipelinable);
        // Ties on every dimension are allowed to coexist only if the two
        // plans are property-identical duplicates — which Insert prevents.
        if (dominates) {
          return Status::Internal(
              StrFormat("dominated plan kept in %s: [%s] dominated by [%s]",
                        entry->set().ToString().c_str(),
                        p->Describe().c_str(), q->Describe().c_str()));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace cote
