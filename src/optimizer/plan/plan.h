#ifndef COTE_OPTIMIZER_PLAN_PLAN_H_
#define COTE_OPTIMIZER_PLAN_PLAN_H_

#include <string>

#include "common/table_set.h"
#include "optimizer/join_method.h"
#include "optimizer/properties/order_property.h"
#include "optimizer/properties/partition_property.h"

namespace cote {

/// Physical operators appearing in plans.
enum class OpType {
  kTableScan,
  kIndexScan,
  kSort,         ///< order enforcer (eager order policy)
  kRepartition,  ///< partition enforcer: hash-redistribute (parallel TQ)
  kReplicate,    ///< partition enforcer: broadcast to all nodes
  kNljn,
  kMgjn,
  kHsjn,
  kGroupBySort,
  kGroupByHash,
};

const char* OpTypeName(OpType op);

inline bool IsJoinOp(OpType op) {
  return op == OpType::kNljn || op == OpType::kMgjn || op == OpType::kHsjn;
}

inline JoinMethod JoinMethodOf(OpType op) {
  switch (op) {
    case OpType::kNljn:
      return JoinMethod::kNljn;
    case OpType::kMgjn:
      return JoinMethod::kMgjn;
    default:
      return JoinMethod::kHsjn;
  }
}

inline OpType OpOfJoinMethod(JoinMethod m) {
  switch (m) {
    case JoinMethod::kNljn:
      return OpType::kNljn;
    case JoinMethod::kMgjn:
      return OpType::kMgjn;
    case JoinMethod::kHsjn:
      return OpType::kHsjn;
  }
  return OpType::kHsjn;
}

/// \brief A physical plan node.
///
/// Plans are immutable once inserted into the MEMO and owned by the Memo's
/// arena; children are plain pointers into the same arena. `order` and
/// `partition` are canonicalized with respect to the owning MEMO entry's
/// column equivalence.
struct Plan {
  OpType op = OpType::kTableScan;
  TableSet tables;
  double rows = 0;
  double cost = 0;
  OrderProperty order;
  PartitionProperty partition;
  /// Single input of unary operators; outer (left) input of joins.
  const Plan* child = nullptr;
  /// Inner (right) input of joins; null for unary operators.
  const Plan* inner = nullptr;
  /// Index ordinal within the base table, for kIndexScan.
  int index_id = -1;
  /// Pipelinable property (paper Table 1): true when no operator below
  /// requires full materialization (no SORT, no hash-join build, no
  /// hash aggregation). Interesting for first-n-rows queries, which can
  /// stop a pipelinable plan early. Tracked as a Pareto dimension only
  /// when the query asks for first rows.
  bool pipelinable = true;

  bool IsJoin() const { return IsJoinOp(op); }

  /// One-line description of this node (not the subtree).
  std::string Describe() const;
};

/// Renders the plan subtree, one operator per line, children indented.
std::string PrintPlan(const Plan* plan, int indent = 0);

}  // namespace cote

#endif  // COTE_OPTIMIZER_PLAN_PLAN_H_
