#include "optimizer/parallel_enumerator.h"

#include "common/check.h"
#include "common/timer.h"
#include "optimizer/gosper_partition.h"

namespace cote {

namespace {
// Same Cartesian-product tolerance as the serial enumerator.
constexpr double kCardOneEpsilon = 1e-9;
}  // namespace

ParallelEnumerator::ParallelEnumerator(int workers)
    : workers_(workers), team_(workers) {
  COTE_CHECK(workers >= 1);
  for (int w = 0; w < workers_; ++w) {
    budgets_.emplace_back();
    slots_.emplace_back();
  }
}

void ParallelEnumerator::RankThunk(void* ctx, int worker) {
  static_cast<ParallelEnumerator*>(ctx)->RunRankSlice(worker);
}

void ParallelEnumerator::RunRankSlice(int worker) {
  const GosperSlice slice =
      PartitionGosperRank(rank_n_, rank_k_, worker, workers_);
  if (slice.count == 0) return;
  StopWatch watch;  // det-ok: busy-time instrumentation, never feeds plans
  WorkerSlot& slot = slots_[worker];
  EnumerationStats& stats = slot.stats;
  std::vector<int>& preds = slot.preds;
  JoinVisitor* visitor = rank_sharded_->Shard(worker);
  ResourceBudget* budget = rank_armed_ ? &budgets_[worker] : nullptr;
  const QueryGraph& graph = *rank_graph_;
  const EnumeratorOptions& options = *rank_options_;

  // The body below is the serial RunBottomUp mask/split loop verbatim
  // (enumerator.cc), with three parallel deltas: the mask sequence is the
  // worker's contiguous Gosper slice instead of the whole rank, the
  // cancel flag is polled once per mask, and charges go to the private
  // worker budget. Everything order-sensitive — split sequence, predicate
  // gather, emission gating — is unchanged, which is what keeps the
  // merged result bit-identical to a serial run.
  uint64_t mask = slice.first_mask;
  int64_t remaining = slice.count;
  while (true) {
    if (cancel_.load(std::memory_order_relaxed)) break;
    if (budget != nullptr && budget->Checkpoint()) {
      // Cooperative team unwind: every other worker stops at its next
      // mask poll, so the overshoot is at most one mask per worker.
      cancel_.store(true, std::memory_order_relaxed);
      break;
    }
    TableSet ts(mask);
    const uint64_t low = LowestBit(mask);
    const uint64_t rest_bits = mask ^ low;
    bool entry_exists = false;

    for (uint64_t sub2 = (rest_bits - 1) & rest_bits;;
         sub2 = (sub2 - 1) & rest_bits) {
      const uint64_t sub = sub2 | low;
      const uint64_t rest = rest_bits ^ sub2;
      COTE_DCHECK_EQ(sub & rest, uint64_t{0});
      COTE_DCHECK_EQ(sub | rest, mask);
      // Lower-rank reads of the shared bitmap: complete and immutable
      // during this rank (rank-k writes touch only rank-k bytes).
      if (exists_[sub] != 0 && exists_[rest] != 0) {
        TableSet s(sub), l(rest);
        graph.ConnectingPredicates(s, l, &preds);
        const bool cartesian = preds.empty();
        bool allowed = true;
        if (cartesian) {
          allowed =
              options.allow_all_cartesian ||
              (options.cartesian_when_card_one &&
               (visitor->EntryCardinality(s) <= 1.0 + kCardOneEpsilon ||
                visitor->EntryCardinality(l) <= 1.0 + kCardOneEpsilon));
        }
        if (allowed) {
          bool emitted = false;
          auto try_emit = [&](TableSet outer, TableSet inner) {
            if (inner.size() > options.max_composite_inner) return;
            if (!graph.OuterEnabled(outer)) return;
            if (!graph.OuterJoinOrientationOk(outer, inner)) return;
            if (!emitted && !entry_exists) {
              exists_[mask] = 1;
              visitor->InitializeEntry(ts);
              ++stats.entries_created;
              if (budget != nullptr) budget->ChargeEntries(1);
              entry_exists = true;
            }
            emitted = true;
            visitor->OnJoin(outer, inner, preds, cartesian);
            ++stats.joins_ordered;
          };
          try_emit(s, l);
          try_emit(l, s);
          if (emitted) ++stats.joins_unordered;
        }
      }
      if (sub2 == 0) break;
    }

    if (--remaining == 0) break;
    const uint64_t carry = mask + low;
    mask = carry | (((mask ^ carry) >> 2) / low);
  }
  slot.busy_seconds += watch.ElapsedSeconds();
}

void ParallelEnumerator::FoldBudgets(ResourceBudget* master) {
  if (master == nullptr || !master->armed()) return;
  for (int w = 0; w < workers_; ++w) {
    ResourceBudget& b = budgets_[w];
    WorkerSlot& slot = slots_[w];
    master->FoldShardCharges(b.entries_charged() - slot.prev_entries,
                             b.plans_charged() - slot.prev_plans,
                             b.checkpoints() - slot.prev_checkpoints,
                             b.tripped_limit());
    slot.prev_entries = b.entries_charged();
    slot.prev_plans = b.plans_charged();
    slot.prev_checkpoints = b.checkpoints();
  }
}

ParallelEnumerationResult ParallelEnumerator::Run(
    const QueryGraph& graph, const EnumeratorOptions& options,
    ShardedVisitor* sharded, ResourceBudget* budget) {
  COTE_CHECK(sharded != nullptr);
  const int n = graph.num_tables();
  COTE_CHECK(n >= 1 && n <= kGosperPartitionMaxTables);

  ParallelEnumerationResult result;
  result.workers = workers_;
  // assign() reuses capacity, as in the serial enumerator's flat path.
  exists_.assign(size_t{1} << n, 0);
  cancel_.store(false, std::memory_order_relaxed);
  const bool governed = budget != nullptr && budget->armed();
  rank_armed_ = governed;
  for (int w = 0; w < workers_; ++w) {
    WorkerSlot& slot = slots_[w];
    slot.stats = EnumerationStats{};
    slot.busy_seconds = 0;
    slot.prev_entries = 0;
    slot.prev_plans = 0;
    slot.prev_checkpoints = 0;
    // Worker deadlines start here rather than at the master's Arm() — a
    // few microseconds of extra allowance, bounded by this call's prefix.
    if (governed) {
      budgets_[w].Arm(budget->limits());
    } else {
      budgets_[w].Disarm();
    }
    sharded->SetShardBudget(w, governed ? &budgets_[w] : nullptr);
  }
  rank_graph_ = &graph;
  rank_options_ = &options;
  rank_sharded_ = sharded;
  rank_n_ = n;

  // ---- Rank 1: singleton entries, inline on the coordinator through
  // shard 0 (the serial enumerator's base-table loop; no checkpoints).
  {
    StopWatch watch;  // det-ok: busy-time instrumentation only
    JoinVisitor* v0 = sharded->Shard(0);
    WorkerSlot& slot0 = slots_[0];
    for (int t = 0; t < n; ++t) {
      TableSet s = TableSet::Single(t);
      exists_[s.bits()] = 1;
      v0->InitializeEntry(s);
      ++slot0.stats.entries_created;
      if (governed) budgets_[0].ChargeEntries(1);
    }
    // det-ok: coordinator-only timing accumulation, not plan-visible
    slot0.busy_seconds += watch.ElapsedSeconds();
  }
  sharded->MergeRank();
  FoldBudgets(budget);

  // ---- Ranks 2..n: dispatch slices, then merge at the barrier. The
  // merge runs even on a cancelled rank so partial shard state (counts,
  // created entries) is adopted before the caller sees the memo/counter.
  if (!(governed && budget->tripped())) {
    for (int k = 2; k <= n; ++k) {
      rank_k_ = k;
      team_.Run(&ParallelEnumerator::RankThunk, this);
      sharded->MergeRank();
      FoldBudgets(budget);
      if ((governed && budget->tripped()) ||
          cancel_.load(std::memory_order_relaxed)) {
        break;
      }
    }
  }

  for (int w = 0; w < workers_; ++w) {
    sharded->SetShardBudget(w, nullptr);
    result.stats.joins_unordered += slots_[w].stats.joins_unordered;
    result.stats.joins_ordered += slots_[w].stats.joins_ordered;
    result.stats.entries_created += slots_[w].stats.entries_created;
    // det-ok: ascending-worker-order fold of timing instrumentation
    result.busy_seconds += slots_[w].busy_seconds;
  }
  return result;
}

}  // namespace cote
