#ifndef COTE_OPTIMIZER_ENUMERATOR_H_
#define COTE_OPTIMIZER_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "common/resource_budget.h"
#include "common/table_set.h"
#include "query/query_graph.h"

namespace cote {

/// Search order of the join enumerator. Both kinds enumerate the same set
/// of joins (only their relative order differs — which §3.1 notes does not
/// affect compilation complexity); kTopDown mimics transformation-based
/// optimizers whose MEMO is not filled bottom-up (§6.2).
enum class EnumeratorKind {
  kBottomUp,  ///< System R style dynamic programming (the default)
  kTopDown,   ///< Volcano/Cascades-style memoized recursion
};

/// \brief Knobs of the dynamic-programming join enumerator.
///
/// These correspond to the optimization-level "knobs" of commercial
/// systems (§1.1): the composite-inner limit interpolates between
/// left-deep-only (limit 1) and full bushy enumeration, and the Cartesian
/// rules control when cross products are considered.
struct EnumeratorOptions {
  /// Which search order drives the visitor.
  EnumeratorKind kind = EnumeratorKind::kBottomUp;
  /// Maximum number of tables in the inner (right) input of a join.
  /// 1 = left-deep plans only; >= n = full bushy search space.
  int max_composite_inner = 64;
  /// DB2 heuristic (§4 item 5): allow a Cartesian product when one input
  /// has estimated cardinality <= 1. Because the *estimate-mode*
  /// cardinality model is simpler, the two modes can disagree here — one
  /// of the paper's error sources.
  bool cartesian_when_card_one = true;
  /// Allow arbitrary Cartesian products (usually off).
  bool allow_all_cartesian = false;
};

/// \brief Aggregate counters reported by one enumeration run.
struct EnumerationStats {
  /// Distinct unordered splits {S, L} that produced at least one join.
  int64_t joins_unordered = 0;
  /// OnJoin() invocations (ordered (outer, inner) pairs).
  int64_t joins_ordered = 0;
  /// MEMO entries created (including the base tables).
  int64_t entries_created = 0;
};

/// \brief The thin interface between join enumeration and plan generation.
///
/// The paper's key implementation idea (§3.1): the enumerator never
/// generates plans itself; it reports each enumerated join to a visitor.
/// The normal optimizer installs a plan-generating visitor; the
/// compilation-time estimator installs a plan-*counting* visitor — the
/// same joins are enumerated either way, because enumeration depends only
/// on logical information (connectivity, cardinality), never on plan
/// contents.
class JoinVisitor {
 public:
  virtual ~JoinVisitor() = default;

  /// Called exactly once when the MEMO entry for `s` comes into existence
  /// (all singletons first, then join results in nondecreasing set size).
  virtual void InitializeEntry(TableSet s) = 0;

  /// Output cardinality of the existing entry `s`; consulted for the
  /// cardinality-sensitive Cartesian-product heuristic. Cardinality is a
  /// logical property, so this does not depend on generated plans.
  virtual double EntryCardinality(TableSet s) = 0;

  /// One enumerated join: `outer` joined with `inner` using the predicates
  /// at `pred_indices` (indices into the query's join_predicates();
  /// empty, with `cartesian` = true, for cross products).
  virtual void OnJoin(TableSet outer, TableSet inner,
                      const std::vector<int>& pred_indices,
                      bool cartesian) = 0;
};

/// \brief Bottom-up dynamic-programming join enumerator (System R style).
///
/// Enumerates, for set sizes 2..n, every split of every table subset into
/// two disjoint non-empty parts whose sub-entries exist, that are linked
/// by at least one join predicate (or qualify under a Cartesian rule).
/// Ordered (outer, inner) pairs are emitted subject to:
///  * the composite-inner limit,
///  * the outer input being "outer enabled" (outer joins, correlated
///    table refs — §4 item 3),
///  * outer-join orientation legality.
class JoinEnumerator {
 public:
  JoinEnumerator(const QueryGraph& graph, const EnumeratorOptions& options)
      : graph_(&graph), options_(options) {}

  /// Runs the full enumeration, driving `visitor`. May be called more than
  /// once; after the first run the enumerator reuses its scratch buffers,
  /// so repeat runs on flat-mode queries perform no heap allocation (the
  /// property hotpath_alloc_test locks in).
  ///
  /// A non-null `budget` makes the run cooperative: every entry created is
  /// charged, and one Checkpoint() per mask batch stops the enumeration
  /// early once the budget trips (the stats then cover the prefix that
  /// ran). Null — the default — keeps the hot path untouched.
  EnumerationStats Run(JoinVisitor* visitor, ResourceBudget* budget = nullptr);

  /// Retargets the enumerator at another query while keeping the scratch
  /// buffers (a session-owned enumerator reuses them across a workload;
  /// a rebind to a same-or-smaller table count performs no allocation).
  void Rebind(const QueryGraph& graph, const EnumeratorOptions& options) {
    graph_ = &graph;
    options_ = options;
  }

 private:
  const QueryGraph* graph_;
  EnumeratorOptions options_;
  /// Scratch reused across runs: the subset-existence bitmap (flat mode)
  /// and the connecting-predicate gather buffer.
  std::vector<uint8_t> exists_;
  std::vector<int> preds_;
};

/// Runs whichever enumerator `options.kind` selects (bottom-up DP or
/// top-down memoized recursion) over `visitor`, optionally governed by
/// `budget` (see JoinEnumerator::Run).
EnumerationStats RunEnumeration(const QueryGraph& graph,
                                const EnumeratorOptions& options,
                                JoinVisitor* visitor,
                                ResourceBudget* budget = nullptr);

}  // namespace cote

#endif  // COTE_OPTIMIZER_ENUMERATOR_H_
