#include "optimizer/memo.h"

#include <algorithm>

#include "common/check.h"

namespace cote {

MemoEntry::MemoEntry(TableSet set, const QueryGraph& graph)
    : MemoEntry(set, graph, nullptr) {}

MemoEntry::MemoEntry(TableSet set, const QueryGraph& graph,
                     std::vector<int>* pred_scratch)
    : set_(set) {
  std::vector<int> local;
  if (pred_scratch == nullptr) pred_scratch = &local;
  // Logical properties computed once per entry: column equivalence from the
  // inner predicates applied inside the set, and outer-eligibility. The
  // internal-predicate gather walks only the set's own edges (ascending
  // index order, matching the original full-list scan).
  graph.InternalPredicates(set, pred_scratch);
  for (int pi : *pred_scratch) {
    const JoinPredicate& p = graph.join_predicates()[pi];
    if (p.kind != JoinKind::kInner) continue;
    equiv_.AddEquivalence(p.left, p.right);
  }
  outer_enabled_ = graph.OuterEnabled(set);
}

const Plan* MemoEntry::Cheapest() const {
  const Plan* best = nullptr;
  for (const Plan* p : plans_) {
    if (best == nullptr || p->cost < best->cost) best = p;
  }
  return best;
}

const Plan* MemoEntry::CheapestSatisfying(
    const OrderProperty& required_order,
    const PartitionProperty& required_partition) const {
  const Plan* best = nullptr;
  for (const Plan* p : plans_) {
    if (!p->order.SatisfiesPrefix(required_order)) continue;
    if (!p->partition.Satisfies(required_partition)) continue;
    if (best == nullptr || p->cost < best->cost) best = p;
  }
  return best;
}

FlatSetIndex& Memo::Index() const {
  // hotpath-ok: lazily built once per query, then read-only probes
  if (!index_.has_value()) index_.emplace(graph_.num_tables());
  return *index_;
}

MemoEntry* Memo::GetOrCreate(TableSet s, bool* created) {
  // Trust boundary of the flat MEMO: the set must be a non-empty subset of
  // the query's tables, or the dense index lookup is out of range.
  COTE_DCHECK(!s.empty());
  COTE_DCHECK(graph_.AllTables().ContainsAll(s));
  bool fresh = false;
  const int32_t idx = Index().FindOrInsert(s.bits(), &fresh);
  if (created != nullptr) *created = fresh;
  if (!fresh) return creation_order_[idx];
  // A fresh index extends the arena by exactly one slot; any gap means the
  // index and the arena have diverged.
  COTE_CHECK_EQ(static_cast<size_t>(idx), creation_order_.size());
  entry_arena_.emplace_back(s, graph_, &pred_scratch_);
  creation_order_.push_back(&entry_arena_.back());
  return creation_order_[idx];
}

MemoEntry* Memo::Find(TableSet s) {
  const int32_t idx = Index().Find(s.bits());
  if (idx < 0) return nullptr;
  COTE_DCHECK_LT(static_cast<size_t>(idx), creation_order_.size());
  return creation_order_[idx];
}

const MemoEntry* Memo::Find(TableSet s) const {
  const int32_t idx = Index().Find(s.bits());
  if (idx < 0) return nullptr;
  COTE_DCHECK_LT(static_cast<size_t>(idx), creation_order_.size());
  return creation_order_[idx];
}

Plan* Memo::NewPlan() {
  ++plans_allocated_;
  if (budget_ != nullptr) budget_->ChargePlans(1);
  arena_.emplace_back();
  return &arena_.back();
}

bool Memo::Insert(MemoEntry* entry, Plan* plan) {
  return InsertPruned(graph_.wants_first_rows(), entry, plan);
}

bool Memo::InsertPruned(bool track_pipeline, MemoEntry* entry, Plan* plan) {
  COTE_DCHECK(entry != nullptr);
  COTE_DCHECK(plan != nullptr);
  // Dominance: q dominates p if q is no more expensive and q's properties
  // are at least as general (q's order prefix-satisfies p's, q's partition
  // satisfies p's requirement, and — for first-rows queries, where the
  // pipelinable property is interesting — q pipelines whenever p does).
  auto dominates = [track_pipeline](const Plan* q, const Plan* p) {
    return q->cost <= p->cost && q->order.SatisfiesPrefix(p->order) &&
           q->partition.Satisfies(p->partition) &&
           (!track_pipeline || q->pipelinable || !p->pipelinable);
  };
  for (const Plan* existing : entry->plans_) {
    if (dominates(existing, plan)) return false;
  }
  auto& plans = entry->plans_;
  plans.erase(std::remove_if(plans.begin(), plans.end(),
                             [&](const Plan* existing) {
                               return dominates(plan, existing);
                             }),
              plans.end());
  plans.push_back(plan);
  return true;
}

Memo::~Memo() = default;

void Memo::PrepareShards(int count) {
  while (static_cast<int>(shards_.size()) < count) {
    shards_.push_back(std::make_unique<MemoShard>(this));
  }
}

void Memo::AdoptShardRank() {
  for (const std::unique_ptr<MemoShard>& shard : shards_) {
    for (MemoEntry* e : shard->created_) {
      bool fresh = false;
      const int32_t idx = Index().FindOrInsert(e->set().bits(), &fresh);
      // Workers own disjoint mask slices and the memo is complete only up
      // to the previous rank, so every adopted entry is new; the dense id
      // must extend the creation order by exactly one slot — the same
      // discipline GetOrCreate enforces on the serial path, which is what
      // makes the merged id layout bit-identical to a serial run.
      COTE_CHECK(fresh);
      COTE_CHECK_EQ(static_cast<size_t>(idx), creation_order_.size());
      creation_order_.push_back(e);
    }
    shard->created_.clear();
    shard->current_ = nullptr;
    plans_allocated_ += shard->plans_allocated_;
    shard->plans_allocated_ = 0;
  }
}

MemoEntry* MemoShard::GetOrCreate(TableSet s, bool* created) {
  COTE_DCHECK(!s.empty());
  if (current_ != nullptr && current_->set_.bits() == s.bits()) {
    if (created != nullptr) *created = false;
    return current_;
  }
  // Lower-rank sets were adopted by the parent at an earlier rank barrier.
  MemoEntry* existing = parent_->Find(s);
  if (existing != nullptr) {
    if (created != nullptr) *created = false;
    return existing;
  }
  if (created != nullptr) *created = true;
  entry_arena_.emplace_back(s, parent_->graph_, &pred_scratch_);
  created_.push_back(&entry_arena_.back());
  current_ = created_.back();
  return current_;
}

MemoEntry* MemoShard::Find(TableSet s) {
  if (current_ != nullptr && current_->set_.bits() == s.bits()) {
    return current_;
  }
  return parent_->Find(s);
}

const MemoEntry* MemoShard::Find(TableSet s) const {
  if (current_ != nullptr && current_->set_.bits() == s.bits()) {
    return current_;
  }
  return static_cast<const Memo*>(parent_)->Find(s);
}

Plan* MemoShard::NewPlan() {
  ++plans_allocated_;
  if (budget_ != nullptr) budget_->ChargePlans(1);
  arena_.emplace_back();
  return &arena_.back();
}

bool MemoShard::Insert(MemoEntry* entry, Plan* plan) {
  return Memo::InsertPruned(parent_->graph_.wants_first_rows(), entry, plan);
}

int64_t Memo::plans_stored() const {
  int64_t n = 0;
  for (const MemoEntry* e : creation_order_) {
    n += static_cast<int64_t>(e->plans().size());
  }
  return n;
}

int64_t Memo::ApproxMemoryBytes() const {
  int64_t bytes = 0;
  for (const MemoEntry* e : creation_order_) {
    bytes += static_cast<int64_t>(sizeof(MemoEntry));
    for (const Plan* p : e->plans()) {
      bytes += static_cast<int64_t>(
          sizeof(Plan) +
          p->order.columns().size() * sizeof(ColumnRef) +
          p->partition.columns().size() * sizeof(ColumnRef));
    }
  }
  return bytes;
}

}  // namespace cote
