#include "optimizer/memo.h"

#include <algorithm>

namespace cote {

MemoEntry::MemoEntry(TableSet set, const QueryGraph& graph) : set_(set) {
  // Logical properties computed once per entry: column equivalence from the
  // inner predicates applied inside the set, and outer-eligibility.
  for (const JoinPredicate& p : graph.join_predicates()) {
    if (p.kind != JoinKind::kInner) continue;
    if (set.Contains(p.left.table) && set.Contains(p.right.table)) {
      equiv_.AddEquivalence(p.left, p.right);
    }
  }
  outer_enabled_ = graph.OuterEnabled(set);
}

const Plan* MemoEntry::Cheapest() const {
  const Plan* best = nullptr;
  for (const Plan* p : plans_) {
    if (best == nullptr || p->cost < best->cost) best = p;
  }
  return best;
}

const Plan* MemoEntry::CheapestSatisfying(
    const OrderProperty& required_order,
    const PartitionProperty& required_partition) const {
  const Plan* best = nullptr;
  for (const Plan* p : plans_) {
    if (!p->order.SatisfiesPrefix(required_order)) continue;
    if (!p->partition.Satisfies(required_partition)) continue;
    if (best == nullptr || p->cost < best->cost) best = p;
  }
  return best;
}

MemoEntry* Memo::GetOrCreate(TableSet s, bool* created) {
  auto it = entries_.find(s.bits());
  if (it != entries_.end()) {
    if (created != nullptr) *created = false;
    return it->second.get();
  }
  auto entry = std::make_unique<MemoEntry>(s, graph_);
  MemoEntry* raw = entry.get();
  entries_.emplace(s.bits(), std::move(entry));
  creation_order_.push_back(raw);
  if (created != nullptr) *created = true;
  return raw;
}

MemoEntry* Memo::Find(TableSet s) {
  auto it = entries_.find(s.bits());
  return it == entries_.end() ? nullptr : it->second.get();
}

const MemoEntry* Memo::Find(TableSet s) const {
  auto it = entries_.find(s.bits());
  return it == entries_.end() ? nullptr : it->second.get();
}

Plan* Memo::NewPlan() {
  ++plans_allocated_;
  arena_.emplace_back();
  return &arena_.back();
}

bool Memo::Insert(MemoEntry* entry, Plan* plan) {
  // Dominance: q dominates p if q is no more expensive and q's properties
  // are at least as general (q's order prefix-satisfies p's, q's partition
  // satisfies p's requirement, and — for first-rows queries, where the
  // pipelinable property is interesting — q pipelines whenever p does).
  const bool track_pipeline = graph_.wants_first_rows();
  auto dominates = [track_pipeline](const Plan* q, const Plan* p) {
    return q->cost <= p->cost && q->order.SatisfiesPrefix(p->order) &&
           q->partition.Satisfies(p->partition) &&
           (!track_pipeline || q->pipelinable || !p->pipelinable);
  };
  for (const Plan* existing : entry->plans_) {
    if (dominates(existing, plan)) return false;
  }
  auto& plans = entry->plans_;
  plans.erase(std::remove_if(plans.begin(), plans.end(),
                             [&](const Plan* existing) {
                               return dominates(plan, existing);
                             }),
              plans.end());
  plans.push_back(plan);
  return true;
}

int64_t Memo::plans_stored() const {
  int64_t n = 0;
  for (const MemoEntry* e : creation_order_) {
    n += static_cast<int64_t>(e->plans().size());
  }
  return n;
}

int64_t Memo::ApproxMemoryBytes() const {
  int64_t bytes = 0;
  for (const MemoEntry* e : creation_order_) {
    bytes += static_cast<int64_t>(sizeof(MemoEntry));
    for (const Plan* p : e->plans()) {
      bytes += static_cast<int64_t>(
          sizeof(Plan) +
          p->order.columns().size() * sizeof(ColumnRef) +
          p->partition.columns().size() * sizeof(ColumnRef));
    }
  }
  return bytes;
}

}  // namespace cote
