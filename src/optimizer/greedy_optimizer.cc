#include "optimizer/greedy_optimizer.h"

#include <limits>

namespace cote {

const Plan* GreedyOptimizer::ScanPlan(int table_ref) {
  const Table* table = graph_.table_ref(table_ref).table;
  Plan* scan = memo_->NewPlan();
  scan->op = OpType::kTableScan;
  scan->tables = TableSet::Single(table_ref);
  scan->rows = card_.BaseRows(table_ref);
  scan->cost = cost_.TableScan(*table, scan->rows);
  return scan;
}

const Plan* GreedyOptimizer::Run() {
  const int n = graph_.num_tables();
  if (n == 0) return nullptr;

  // Start from the smallest filtered table.
  int start = 0;
  for (int t = 1; t < n; ++t) {
    if (card_.BaseRows(t) < card_.BaseRows(start)) start = t;
  }
  const Plan* current = ScanPlan(start);
  TableSet joined = TableSet::Single(start);

  while (joined.size() < n) {
    // Pick the connected table minimizing the intermediate cardinality;
    // fall back to the smallest unjoined table (Cartesian step) if the
    // graph is disconnected from here.
    int best_t = -1;
    double best_rows = std::numeric_limits<double>::infinity();
    TableSet neighbors = graph_.Neighbors(joined);
    TableSet candidates = neighbors.empty()
                              ? graph_.AllTables().Minus(joined)
                              : neighbors;
    for (int t : candidates) {
      double rows = card_.JoinRows(joined.With(t));
      if (rows < best_rows) {
        best_rows = rows;
        best_t = t;
      }
    }
    const Plan* inner = ScanPlan(best_t);
    TableSet next = joined.With(best_t);
    double out_rows = card_.JoinRows(next);

    double nljn_cost =
        cost_.Nljn(current->rows, current->cost, inner->rows, inner->cost);
    double hsjn_cost = cost_.Hsjn(current->rows, current->cost, inner->rows,
                                  inner->cost, out_rows);
    bool has_pred = graph_.AreConnected(joined, TableSet::Single(best_t));

    Plan* join = memo_->NewPlan();
    join->op = (has_pred && hsjn_cost < nljn_cost) ? OpType::kHsjn
                                                   : OpType::kNljn;
    join->tables = next;
    join->rows = out_rows;
    join->cost = join->op == OpType::kHsjn ? hsjn_cost : nljn_cost;
    join->child = current;
    join->inner = inner;

    current = join;
    joined = next;
  }
  return current;
}

}  // namespace cote
