#include "optimizer/completion.h"

#include <algorithm>
#include <cmath>

namespace cote {

const Plan* CompleteQuery(const QueryGraph& graph, Memo* memo, MemoEntry* top,
                          const CostModel& cost) {
  // For first-n-rows queries the pipelinable property pays off here: a
  // pipelinable plan only executes the fraction of its input needed to
  // produce n rows, so plans are compared on that discounted cost.
  auto effective_cost = [&graph](const Plan* p) {
    if (!graph.wants_first_rows() || !p->pipelinable) return p->cost;
    double fraction = static_cast<double>(graph.fetch_first()) /
                      std::max(p->rows, 1.0);
    return p->cost * std::clamp(fraction, 0.01, 1.0);
  };
  const Plan* best = top->Cheapest();
  if (graph.wants_first_rows() && !graph.has_aggregation()) {
    for (const Plan* p : top->plans()) {
      if (effective_cost(p) < effective_cost(best)) best = p;
    }
  }

  if (graph.has_aggregation()) {
    const auto& gb = graph.group_by();
    double in_rows = top->cardinality();
    double out_rows = in_rows;
    if (!gb.empty()) {
      double groups = 1.0;
      for (const ColumnRef& c : gb) groups *= graph.ColumnNdv(c);
      out_rows = std::min(in_rows, std::max(1.0, groups));
    }
    // Two group-by plans per aggregation: sort-based and hash-based (§3).
    OrderProperty gb_order =
        OrderProperty(gb).Canonicalize(top->equivalence());
    const Plan* sorted_in = nullptr;
    for (const Plan* p : top->plans()) {
      if (gb.empty() || p->order.SatisfiesSet(gb_order)) {
        if (sorted_in == nullptr || p->cost < sorted_in->cost) sorted_in = p;
      }
    }
    double sort_based_cost;
    const Plan* sort_child;
    if (sorted_in != nullptr) {
      sort_based_cost = sorted_in->cost + cost.GroupBySort(in_rows, out_rows);
      sort_child = sorted_in;
    } else {
      sort_based_cost = best->cost + cost.Sort(in_rows, gb_order.size()) +
                        cost.GroupBySort(in_rows, out_rows);
      sort_child = best;
    }
    double hash_based_cost = best->cost + cost.GroupByHash(in_rows, out_rows);

    Plan* agg = memo->NewPlan();
    agg->tables = graph.AllTables();
    agg->rows = out_rows;
    if (sort_based_cost <= hash_based_cost) {
      agg->op = OpType::kGroupBySort;
      agg->cost = sort_based_cost;
      agg->child = sort_child;
      agg->order = sort_child->order;
      // Streams when the input was already sorted (no extra SORT).
      agg->pipelinable = (sorted_in != nullptr) && sort_child->pipelinable;
    } else {
      agg->op = OpType::kGroupByHash;
      agg->cost = hash_based_cost;
      agg->child = best;
      agg->order = OrderProperty::None();
      agg->pipelinable = false;  // hash aggregation materializes
    }
    agg->partition = agg->child->partition;
    best = agg;
  }

  if (!graph.order_by().empty()) {
    OrderProperty ob =
        OrderProperty(graph.order_by()).Canonicalize(top->equivalence());
    if (!best->order.SatisfiesPrefix(ob)) {
      // Prefer a naturally ordered top plan when no aggregation intervened.
      const Plan* ordered = graph.has_aggregation()
                                ? nullptr
                                : top->CheapestSatisfying(
                                      ob, PartitionProperty::Serial());
      if (ordered != nullptr && ordered->cost < best->cost + 1e-12) {
        best = ordered;
      } else {
        Plan* sort = memo->NewPlan();
        sort->op = OpType::kSort;
        sort->tables = graph.AllTables();
        sort->rows = best->rows;
        sort->cost = best->cost + cost.Sort(best->rows, ob.size());
        sort->order = ob;
        sort->partition = best->partition;
        sort->pipelinable = false;
        sort->child = best;
        best = sort;
      }
    }
  }

  return best;
}

int64_t CountCompletionPlans(const QueryGraph& graph) {
  int64_t plans = 0;
  if (graph.has_aggregation()) plans += 2;  // sort-based + hash-based
  if (!graph.order_by().empty()) plans += 1;  // final SORT enforcer
  return plans;
}

}  // namespace cote
