#ifndef COTE_OPTIMIZER_COMPLETION_H_
#define COTE_OPTIMIZER_COMPLETION_H_

#include <cstdint>

#include "optimizer/cost/cost_model.h"
#include "optimizer/memo.h"
#include "query/query_graph.h"

namespace cote {

/// Query completion — the "other" compilation work that follows join
/// enumeration: the first-rows preference, aggregation planning (sort-
/// vs hash-based group by), and the final ORDER BY enforcer. Formerly
/// inlined in Optimizer::OptimizeHigh; now one pipeline stage with two
/// modes, mirroring the paper's visitor split (§3.1): plan mode builds
/// the completion plans on top of the enumerated MEMO, estimate mode
/// merely counts the candidates plan mode would consider.

/// Plan mode. `top` is the MEMO entry for the full table set and must
/// hold at least one plan; enforcer plans are allocated from `memo`.
/// Returns the completed best plan.
const Plan* CompleteQuery(const QueryGraph& graph, Memo* memo, MemoEntry* top,
                          const CostModel& cost);

/// Estimate mode: the number of completion plans plan mode would consider
/// for this query — two group-by candidates (sort- and hash-based) when
/// the query aggregates, plus one final-sort candidate when it orders.
/// Allocation-free (a pure counting stage, in the style of Table 3).
int64_t CountCompletionPlans(const QueryGraph& graph);

}  // namespace cote

#endif  // COTE_OPTIMIZER_COMPLETION_H_
