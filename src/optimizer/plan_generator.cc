#include "optimizer/plan_generator.h"

#include <algorithm>
#include <cassert>

namespace cote {

template <typename MemoT>
PlanGeneratorT<MemoT>::PlanGeneratorT(const QueryGraph& graph, MemoT* memo,
                             const CostModel& cost_model,
                             const CardinalityModel& cardinality,
                             const InterestingOrders& interesting,
                             const PlanGenOptions& options)
    : graph_(graph),
      memo_(memo),
      cost_(cost_model),
      card_(cardinality),
      interesting_(interesting),
      options_(options) {}

template <typename MemoT>
bool PlanGeneratorT<MemoT>::SavePlan(MemoEntry* entry, Plan* plan) {
  if (options_.pilot_pass && plan->cost > options_.pilot_cost) {
    ++pruned_by_pilot_;
    return false;
  }
  ScopedTimer t(&save_time_);
  return memo_->Insert(entry, plan);
}

template <typename MemoT>
OrderProperty PlanGeneratorT<MemoT>::OutputOrder(const OrderProperty& order,
                                         const MemoEntry& j) const {
  if (order.IsNone()) return order;
  OrderProperty canonical = order.Canonicalize(j.equivalence());
  if (interesting_.Useful(canonical, j.set(), j.equivalence())) {
    return canonical;
  }
  return OrderProperty::None();  // retired: collapses to DC
}

template <typename MemoT>
double PlanGeneratorT<MemoT>::EntryCardinality(TableSet s) {
  MemoEntry* e = memo_->Find(s);
  if (e != nullptr) return MemoizedJoinRows(card_, s, e->mutable_cardinality());
  return card_.JoinRows(s);
}

template <typename MemoT>
void PlanGeneratorT<MemoT>::InitializeEntry(TableSet s) {
  ScopedTimer timer(&init_time_);
  MemoEntry* entry = memo_->GetOrCreate(s);
  entry->set_cardinality(card_.JoinRows(s));
  if (s.size() > 1) return;

  // Base-table access plans.
  const int t = s.First();
  const Table* table = graph_.table_ref(t).table;
  const double rows = entry->cardinality();

  PartitionProperty base_part = PartitionProperty::Serial();
  if (options_.parallel) {
    const PartitioningSpec& spec = table->partitioning();
    switch (spec.kind) {
      case PartitionKind::kHash: {
        std::vector<ColumnRef> cols;
        for (int ord : spec.key_columns) cols.emplace_back(t, ord);
        base_part = PartitionProperty::Hash(std::move(cols));
        break;
      }
      case PartitionKind::kReplicated:
        base_part = PartitionProperty::Replicated();
        break;
      case PartitionKind::kSingleNode:
        base_part = PartitionProperty::SingleNode();
        break;
    }
  }

  Plan* scan = memo_->NewPlan();
  scan->op = OpType::kTableScan;
  scan->tables = s;
  scan->rows = rows;
  scan->cost = cost_.TableScan(*table, rows);
  scan->order = OrderProperty::None();
  scan->partition = base_part;
  ++scan_plans_;
  SavePlan(entry, scan);

  for (size_t i = 0; i < table->indexes().size(); ++i) {
    const Index& idx = table->indexes()[i];
    std::vector<ColumnRef> key_cols;
    for (int ord : idx.key_columns) key_cols.emplace_back(t, ord);
    // Selectivity of local predicates matching the leading key column.
    double match_sel = 1.0;
    for (const LocalPredicate& p : graph_.local_predicates()) {
      if (p.column.table == t && !key_cols.empty() &&
          p.column == key_cols[0]) {
        match_sel *= p.selectivity;
      }
    }
    Plan* iscan = memo_->NewPlan();
    iscan->op = OpType::kIndexScan;
    iscan->tables = s;
    iscan->rows = rows;
    iscan->cost = cost_.IndexScan(*table, idx, match_sel, rows);
    iscan->order = OutputOrder(OrderProperty(key_cols), *entry);
    iscan->partition = base_part;
    iscan->index_id = static_cast<int>(i);
    ++scan_plans_;
    SavePlan(entry, iscan);
  }

  if (options_.parallel && options_.eager_partitions) {
    // Eager partition policy: force each interesting partition (a join
    // column of this table) into existence with a repartition enforcer.
    const Plan* cheapest = entry->Cheapest();
    for (const JoinPredicate& pred : graph_.join_predicates()) {
      ColumnRef side = pred.SideIn(t);
      if (!side.valid()) continue;
      PartitionProperty target = PartitionProperty::Hash({side});
      if (entry->CheapestSatisfying(OrderProperty::None(), target) !=
          nullptr) {
        continue;  // exists naturally
      }
      Plan* move = memo_->NewPlan();
      move->op = OpType::kRepartition;
      move->tables = s;
      move->rows = rows;
      move->cost = cheapest->cost + cost_.Repartition(rows);
      move->order = OrderProperty::None();
      move->partition = target;
      move->pipelinable = cheapest->pipelinable;
      move->child = cheapest;
      ++enforcers_;
      SavePlan(entry, move);
    }
  }

  if (options_.eager_orders) {
    // Eager order policy: force every interesting order applicable to this
    // table into existence with a SORT enforcer (§4 item 1).
    const Plan* cheapest = entry->Cheapest();
    for (const OrderInterest* interest : interesting_.ActiveInterests(s)) {
      OrderProperty o = interest->order.Canonicalize(entry->equivalence());
      if (o.IsNone()) continue;
      if (entry->CheapestSatisfying(o, PartitionProperty::Serial()) !=
          nullptr) {
        continue;  // already exists naturally
      }
      Plan* sort = memo_->NewPlan();
      sort->op = OpType::kSort;
      sort->tables = s;
      sort->rows = rows;
      sort->cost = cheapest->cost + cost_.Sort(rows, o.size());
      sort->order = o;
      sort->partition = cheapest->partition;
      sort->pipelinable = false;  // SORT materializes
      sort->child = cheapest;
      ++enforcers_;
      SavePlan(entry, sort);
    }
  }
}

template <typename MemoT>
const Plan* PlanGeneratorT<MemoT>::InputPlan(MemoEntry* e, const OrderProperty& order,
                                     const PartitionProperty& partition) {
  // 1. Natural plan satisfying both requirements.
  const Plan* best = e->CheapestSatisfying(order, partition);

  // 2. Sort enforcer on the cheapest partition-satisfying plan.
  const Plan* part_ok = order.IsNone()
                            ? nullptr
                            : e->CheapestSatisfying(OrderProperty::None(),
                                                    partition);
  double sort_cost = part_ok == nullptr
                         ? 0
                         : part_ok->cost + cost_.Sort(part_ok->rows,
                                                      order.size());
  // 3. Repartition (+ sort) on the overall cheapest plan; only hash and
  // replicated targets are enforceable.
  const Plan* cheapest = e->Cheapest();
  bool enforceable =
      partition.kind() == PartitionProperty::Kind::kHash ||
      partition.kind() == PartitionProperty::Kind::kReplicated;
  double move_cost = 0;
  if (cheapest != nullptr && enforceable) {
    move_cost = cheapest->cost +
                (partition.kind() == PartitionProperty::Kind::kHash
                     ? cost_.Repartition(cheapest->rows)
                     : cost_.Replicate(cheapest->rows));
    if (!order.IsNone()) {
      move_cost += cost_.Sort(cheapest->rows, order.size());
    }
  }

  // Pick the cheapest feasible alternative; materialize enforcers lazily.
  double best_cost = best != nullptr ? best->cost
                                     : std::numeric_limits<double>::infinity();
  if (part_ok != nullptr && sort_cost < best_cost) {
    Plan* sort = memo_->NewPlan();
    sort->op = OpType::kSort;
    sort->tables = e->set();
    sort->rows = part_ok->rows;
    sort->cost = sort_cost;
    sort->order = order;
    sort->partition = part_ok->partition;
    sort->pipelinable = false;
    sort->child = part_ok;
    ++enforcers_;
    best = sort;
    best_cost = sort_cost;
  }
  if (cheapest != nullptr && enforceable && move_cost < best_cost) {
    Plan* move = memo_->NewPlan();
    move->op = partition.kind() == PartitionProperty::Kind::kHash
                   ? OpType::kRepartition
                   : OpType::kReplicate;
    move->tables = e->set();
    move->rows = cheapest->rows;
    move->cost = cheapest->cost +
                 (partition.kind() == PartitionProperty::Kind::kHash
                      ? cost_.Repartition(cheapest->rows)
                      : cost_.Replicate(cheapest->rows));
    move->order = OrderProperty::None();
    move->partition = partition;
    move->pipelinable = cheapest->pipelinable;  // exchanges stream
    move->child = cheapest;
    ++enforcers_;
    const Plan* input = move;
    if (!order.IsNone()) {
      Plan* sort = memo_->NewPlan();
      sort->op = OpType::kSort;
      sort->tables = e->set();
      sort->rows = move->rows;
      sort->cost = move_cost;
      sort->order = order;
      sort->partition = partition;
      sort->pipelinable = false;
      sort->child = move;
      ++enforcers_;
      input = sort;
    }
    best = input;
  }
  return best;
}

template <typename MemoT>
const Plan* PlanGeneratorT<MemoT>::ReplicatedInput(MemoEntry* e) {
  return InputPlan(e, OrderProperty::None(), PartitionProperty::Replicated());
}

template <typename MemoT>
std::vector<PartitionProperty> PlanGeneratorT<MemoT>::JoinPartitions(
    const MemoEntry& s, const MemoEntry& l,
    const std::vector<ColumnRef>& jcols, const MemoEntry& j) const {
  if (!options_.parallel) return {PartitionProperty::Serial()};

  std::vector<PartitionProperty> out;
  auto add = [&out](const PartitionProperty& p) {
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  };
  // Co-location-valid hash partitions already present in either input.
  for (const MemoEntry* e : {&s, &l}) {
    for (const Plan* p : e->plans()) {
      PartitionProperty canon = p->partition.Canonicalize(j.equivalence());
      if (canon.kind() == PartitionProperty::Kind::kHash &&
          canon.KeysSubsetOf(jcols)) {
        add(canon);
      }
    }
  }
  // Single-node joins are co-located if both sides can be on one node.
  bool s_single = false, l_single = false;
  for (const Plan* p : s.plans()) {
    s_single |= p->partition.kind() == PartitionProperty::Kind::kSingleNode;
  }
  for (const Plan* p : l.plans()) {
    l_single |= p->partition.kind() == PartitionProperty::Kind::kSingleNode;
  }
  if (s_single && l_single) add(PartitionProperty::SingleNode());

  // No input partitioned usefully: repartition both sides on the join
  // columns — creating a brand-new interesting partition value (§4).
  if (out.empty() && !jcols.empty()) {
    add(PartitionProperty::Hash(jcols));
  }
  if (out.empty()) add(PartitionProperty::SingleNode());
  return out;
}

template <typename MemoT>
void PlanGeneratorT<MemoT>::OnJoin(TableSet outer, TableSet inner,
                           const std::vector<int>& pred_indices,
                           bool cartesian) {
  ScopedTimer timer(&on_join_time_);
  (void)cartesian;

  MemoEntry* s = memo_->Find(outer);
  MemoEntry* l = memo_->Find(inner);
  MemoEntry* j = memo_->Find(outer.Union(inner));
  assert(s != nullptr && l != nullptr && j != nullptr);
  MemoizedJoinRows(card_, j->set(), j->mutable_cardinality());

  // Merge-join candidates, oriented per side, deduped by their canonical
  // merge order (transitive-closure predicates often alias each other).
  std::vector<MergeCandidate> candidates;
  std::vector<OrderProperty> seen_orders;
  std::vector<ColumnRef> all_outer_cols, all_inner_cols;
  auto add_candidate = [&](MergeCandidate cand) {
    OrderProperty canon =
        OrderProperty(cand.outer_cols).Canonicalize(j->equivalence());
    if (std::find(seen_orders.begin(), seen_orders.end(), canon) !=
        seen_orders.end()) {
      return;
    }
    seen_orders.push_back(std::move(canon));
    candidates.push_back(std::move(cand));
  };
  for (int pi : pred_indices) {
    const JoinPredicate& p = graph_.join_predicates()[pi];
    ColumnRef oc = outer.Contains(p.left.table) ? p.left : p.right;
    ColumnRef ic = outer.Contains(p.left.table) ? p.right : p.left;
    add_candidate(MergeCandidate{{oc}, {ic}});
    all_outer_cols.push_back(oc);
    all_inner_cols.push_back(ic);
  }
  if (pred_indices.size() >= 2) {
    add_candidate(MergeCandidate{all_outer_cols, all_inner_cols});
  }

  GenerateNljn(s, l, j, pred_indices);
  if (!cartesian) {
    GenerateMgjn(s, l, j, candidates);
    GenerateHsjn(s, l, j, pred_indices);
  }
}

namespace {

/// J-canonical representatives of the join columns.
std::vector<ColumnRef> CanonicalJoinColumns(const QueryGraph& graph,
                                            const std::vector<int>& preds,
                                            const MemoEntry& j) {
  std::vector<ColumnRef> out;
  for (int pi : preds) {
    ColumnRef rep = j.equivalence().Find(graph.join_predicates()[pi].left);
    if (std::find(out.begin(), out.end(), rep) == out.end()) {
      out.push_back(rep);
    }
  }
  return out;
}

}  // namespace

template <typename MemoT>
const Plan* PlanGeneratorT<MemoT>::IndexProbeInner(
    const MemoEntry& l, const std::vector<int>& preds) const {
  if (l.set().size() != 1 || preds.empty()) return nullptr;
  const int t = l.set().First();
  const Table* table = graph_.table_ref(t).table;
  for (const Plan* p : l.plans()) {
    if (p->op != OpType::kIndexScan || p->index_id < 0) continue;
    const Index& idx = table->indexes()[p->index_id];
    if (idx.key_columns.empty()) continue;
    ColumnRef leading(t, idx.key_columns[0]);
    for (int pi : preds) {
      const JoinPredicate& pred = graph_.join_predicates()[pi];
      if (pred.SideIn(t) == leading) return p;
    }
  }
  return nullptr;
}

template <typename MemoT>
void PlanGeneratorT<MemoT>::GenerateNljn(MemoEntry* s, MemoEntry* l, MemoEntry* j,
                                 const std::vector<int>& preds) {
  std::vector<Plan*> plans;
  {
    ScopedTimer timer(&gen_time_[static_cast<int>(JoinMethod::kNljn)]);
    std::vector<ColumnRef> jcols = CanonicalJoinColumns(graph_, preds, *j);
    const double out_rows = j->cardinality();

    auto make = [&](const Plan* po, const Plan* pi,
                    const PartitionProperty& out_part) {
      if (po == nullptr || pi == nullptr) return;
      Plan* p = memo_->NewPlan();
      p->op = OpType::kNljn;
      p->tables = j->set();
      p->rows = out_rows;
      p->cost = cost_.Nljn(po->rows, po->cost, pi->rows, pi->cost);
      p->order = OutputOrder(po->order, *j);  // NLJN: full order propagation
      p->partition = out_part.Canonicalize(j->equivalence());
      p->pipelinable = po->pipelinable && pi->pipelinable;
      p->child = po;
      p->inner = pi;
      ++generated_[JoinMethod::kNljn];
      plans.push_back(p);
    };

    // Index nested-loops variant: probe an inner index per outer row
    // instead of rescanning the inner.
    const Plan* probe = IndexProbeInner(*l, preds);
    if (options_.parallel && probe != nullptr) {
      // Probing a distributed inner requires co-location or a local copy.
      PartitionProperty canon = probe->partition.Canonicalize(j->equivalence());
      bool colocated =
          canon.kind() == PartitionProperty::Kind::kReplicated ||
          (canon.kind() == PartitionProperty::Kind::kHash &&
           canon.KeysSubsetOf(jcols));
      if (!colocated) probe = nullptr;
    }
    auto make_inl = [&](const Plan* po) {
      if (po == nullptr || probe == nullptr) return;
      const Table* inner_table = graph_.table_ref(l->set().First()).table;
      Plan* p = memo_->NewPlan();
      p->op = OpType::kNljn;
      p->tables = j->set();
      p->rows = out_rows;
      p->cost = cost_.IndexNljn(po->rows, po->cost, *inner_table, out_rows);
      p->order = OutputOrder(po->order, *j);
      p->partition = po->partition.Canonicalize(j->equivalence());
      p->pipelinable = po->pipelinable;  // index probes stream
      p->child = po;
      p->inner = probe;
      // Tag as index nested-loops: the inner is a parameterized access
      // path probed per outer row, not a fully-scanned input, so its
      // standalone cost is NOT included in the join's cost.
      p->index_id = probe->index_id;
      ++generated_[JoinMethod::kNljn];
      plans.push_back(p);
    };

    // One NLJN per (distinct outer order value × co-location alternative):
    // the outer's order propagates fully, and in parallel mode each
    // interesting partition alternative yields its own plan (this is the
    // order × partition product the paper's §3.4 counts).
    std::vector<OrderProperty> outer_orders;
    for (const Plan* po : s->plans()) {
      if (std::find(outer_orders.begin(), outer_orders.end(), po->order) ==
          outer_orders.end()) {
        outer_orders.push_back(po->order);
      }
    }

    auto redundant_inner = [&](const Plan* po,
                               const PartitionProperty& out_part) {
      // Optional DB2-oversight reproduction: an additional (redundant)
      // NLJN with an index-ordered inner.
      if (!options_.redundant_nljn_inner || preds.empty() ||
          l->set().size() != 1) {
        return;
      }
      const JoinPredicate& p0 = graph_.join_predicates()[preds[0]];
      ColumnRef ic = l->set().Contains(p0.left.table) ? p0.left : p0.right;
      const Plan* pi2 = l->CheapestSatisfying(
          OrderProperty({ic}).Canonicalize(l->equivalence()),
          PartitionProperty::Serial());
      if (pi2 != nullptr) make(po, pi2, out_part);  // duplicate on purpose
    };

    if (!options_.parallel) {
      for (const OrderProperty& o : outer_orders) {
        const Plan* po =
            s->CheapestSatisfying(o, PartitionProperty::Serial());
        const Plan* pi = l->Cheapest();
        make(po, pi, PartitionProperty::Serial());
        make_inl(po);
        redundant_inner(po, PartitionProperty::Serial());
      }
    } else {
      std::vector<PartitionProperty> jparts =
          JoinPartitions(*s, *l, jcols, *j);
      for (const OrderProperty& o : outer_orders) {
        for (const PartitionProperty& pv : jparts) {
          const Plan* po = InputPlan(s, o, pv);
          const Plan* pi = InputPlan(l, OrderProperty::None(), pv);
          make(po, pi, pv);
        }
        // Broadcast-inner alternative: outer keeps its own distribution.
        const Plan* po = s->CheapestSatisfying(o, PartitionProperty::Serial());
        if (po != nullptr &&
            po->partition.kind() != PartitionProperty::Kind::kReplicated) {
          make(po, ReplicatedInput(l), po->partition);
        }
        make_inl(po);
        redundant_inner(po, po != nullptr ? po->partition
                                          : PartitionProperty::Serial());
      }
    }
  }
  for (Plan* p : plans) SavePlan(j, p);
}

template <typename MemoT>
void PlanGeneratorT<MemoT>::GenerateMgjn(MemoEntry* s, MemoEntry* l, MemoEntry* j,
                                 const std::vector<MergeCandidate>& candidates) {
  std::vector<Plan*> plans;
  {
    ScopedTimer timer(&gen_time_[static_cast<int>(JoinMethod::kMgjn)]);
    const double out_rows = j->cardinality();

    for (const MergeCandidate& cand : candidates) {
      OrderProperty outer_req =
          OrderProperty(cand.outer_cols).Canonicalize(s->equivalence());
      OrderProperty inner_req =
          OrderProperty(cand.inner_cols).Canonicalize(l->equivalence());
      OrderProperty base_out =
          OrderProperty(cand.outer_cols).Canonicalize(j->equivalence());

      std::vector<ColumnRef> jcols;
      for (const ColumnRef& c : base_out.columns()) jcols.push_back(c);

      // Output order candidates: the merge order itself, plus coverage —
      // outer orders that subsume it also come out sorted (§3.3), which is
      // how one merge join yields several plans.
      struct OutVariant {
        OrderProperty outer_side;  // requirement in s-canonical terms
        OrderProperty output;      // j-canonical output order (pre-filter)
      };
      std::vector<OutVariant> variants;
      variants.push_back(OutVariant{outer_req, base_out});
      for (const Plan* po : s->plans()) {
        OrderProperty po_j = po->order.Canonicalize(j->equivalence());
        if (po_j.size() > base_out.size() &&
            po_j.SatisfiesPrefix(base_out)) {
          bool dup = false;
          for (const OutVariant& v : variants) dup |= (v.output == po_j);
          if (!dup) variants.push_back(OutVariant{po->order, po_j});
        }
      }

      for (const PartitionProperty& pv :
           JoinPartitions(*s, *l, jcols, *j)) {
        for (const OutVariant& v : variants) {
          const Plan* po = InputPlan(s, v.outer_side, pv);
          const Plan* pi = InputPlan(l, inner_req, pv);
          if (po == nullptr || pi == nullptr) continue;
          Plan* p = memo_->NewPlan();
          p->op = OpType::kMgjn;
          p->tables = j->set();
          p->rows = out_rows;
          p->cost = cost_.Mgjn(po->rows, po->cost, pi->rows, pi->cost,
                               out_rows);
          OrderProperty out_order = OutputOrder(v.output, *j);
          p->order = out_order;
          p->partition = pv;
          p->pipelinable = po->pipelinable && pi->pipelinable;
          p->child = po;
          p->inner = pi;
          ++generated_[JoinMethod::kMgjn];
          plans.push_back(p);
        }
      }
    }
  }
  for (Plan* p : plans) SavePlan(j, p);
}

template <typename MemoT>
void PlanGeneratorT<MemoT>::GenerateHsjn(MemoEntry* s, MemoEntry* l, MemoEntry* j,
                                 const std::vector<int>& preds) {
  std::vector<Plan*> plans;
  {
    ScopedTimer timer(&gen_time_[static_cast<int>(JoinMethod::kHsjn)]);
    std::vector<ColumnRef> jcols = CanonicalJoinColumns(graph_, preds, *j);
    const double out_rows = j->cardinality();

    auto make = [&](const Plan* po, const Plan* pi,
                    const PartitionProperty& out_part) {
      if (po == nullptr || pi == nullptr) return;
      Plan* p = memo_->NewPlan();
      p->op = OpType::kHsjn;
      p->tables = j->set();
      p->rows = out_rows;
      p->cost = cost_.Hsjn(po->rows, po->cost, pi->rows, pi->cost, out_rows);
      p->order = OrderProperty::None();  // HSJN destroys order
      p->partition = out_part.Canonicalize(j->equivalence());
      p->pipelinable = false;  // the hash build materializes
      p->child = po;
      p->inner = pi;
      ++generated_[JoinMethod::kHsjn];
      plans.push_back(p);
    };

    for (const PartitionProperty& pv : JoinPartitions(*s, *l, jcols, *j)) {
      make(InputPlan(s, OrderProperty::None(), pv),
           InputPlan(l, OrderProperty::None(), pv), pv);
    }
    if (options_.parallel) {
      // Broadcast-inner variant: outer stays put, inner is replicated.
      const Plan* po = s->Cheapest();
      const Plan* pi = ReplicatedInput(l);
      if (po != nullptr &&
          po->partition.kind() != PartitionProperty::Kind::kReplicated) {
        make(po, pi, po->partition);
      }
    }
  }
  for (Plan* p : plans) SavePlan(j, p);
}

// The two memo flavors the pipeline drives: the serial Memo (the alias
// PlanGenerator, codegen-identical to the pre-template class) and the
// per-worker MemoShard of the parallel enumerator.
template class PlanGeneratorT<Memo>;
template class PlanGeneratorT<MemoShard>;

}  // namespace cote
