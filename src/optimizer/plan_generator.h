#ifndef COTE_OPTIMIZER_PLAN_GENERATOR_H_
#define COTE_OPTIMIZER_PLAN_GENERATOR_H_

#include <limits>
#include <vector>

#include "common/timer.h"
#include "optimizer/cost/cardinality.h"
#include "optimizer/cost/cost_model.h"
#include "optimizer/enumerator.h"
#include "optimizer/memo.h"
#include "optimizer/properties/interesting_orders.h"
#include "optimizer/stats.h"

namespace cote {

/// \brief Knobs of normal-mode plan generation.
struct PlanGenOptions {
  /// Shared-nothing planning: base tables carry their catalog partitioning,
  /// joins require co-location or generate repartition/broadcast enforcers.
  bool parallel = false;

  /// Eager order policy (DB2's choice, §4 item 1): SORT enforcers are
  /// generated for interesting orders that do not arise naturally.
  bool eager_orders = true;

  /// Eager partition policy (ablation of §4's lazy choice): repartition
  /// enforcers materialize every interesting partition (join columns) at
  /// the base tables, making the search space insensitive to how data is
  /// initially partitioned — at the price of generating more plans.
  bool eager_partitions = false;

  /// Pilot-pass pruning (§6.1): discard any generated plan whose cost
  /// exceeds `pilot_cost` (typically the cost of a quick greedy plan).
  bool pilot_pass = false;
  double pilot_cost = std::numeric_limits<double>::infinity();

  /// Reproduces the DB2 "implementation oversight" of §5.2 that generated
  /// redundant NLJN plans (an extra index-inner NLJN per outer plan).
  bool redundant_nljn_inner = false;
};

/// \brief Normal-mode join visitor: generates and costs physical plans.
///
/// Installed behind the enumerator's thin interface. For every enumerated
/// join it generates NLJN / MGJN / HSJN plans, propagating the order
/// property per Table 2 (NLJN full, MGJN partial via the join columns plus
/// coverage, HSJN none) and the partition property fully, inserting
/// enforcers (SORT, Repartition, Replicate) where required. Each
/// generation path and each MEMO insertion is timed so compilation time
/// can be attributed per join method (Figure 2) and regressed into the
/// per-plan-type coefficients Ct (§3.5).
///
/// Templated on the memo flavor so the parallel enumerator can run the
/// *same generation code* against a per-worker MemoShard: MemoT supplies
/// Find / GetOrCreate / NewPlan / Insert. The serial alias PlanGenerator
/// (= PlanGeneratorT<Memo>) is what the serial pipeline instantiates —
/// byte-for-byte the pre-template behavior. Definitions live in
/// plan_generator.cc behind explicit instantiations for both flavors.
template <typename MemoT>
class PlanGeneratorT : public JoinVisitor {
 public:
  PlanGeneratorT(const QueryGraph& graph, MemoT* memo,
                 const CostModel& cost_model,
                 const CardinalityModel& cardinality,
                 const InterestingOrders& interesting,
                 const PlanGenOptions& options);

  // JoinVisitor interface -----------------------------------------------
  void InitializeEntry(TableSet s) override;
  double EntryCardinality(TableSet s) override;
  void OnJoin(TableSet outer, TableSet inner,
              const std::vector<int>& pred_indices, bool cartesian) override;

  // Results ---------------------------------------------------------------
  const JoinTypeCounts& join_plans_generated() const { return generated_; }
  int64_t enforcer_plans() const { return enforcers_; }
  int64_t scan_plans() const { return scan_plans_; }
  int64_t pruned_by_pilot() const { return pruned_by_pilot_; }

  /// Time spent inside generation of plans of each join method.
  const TimeAccumulator& gen_time(JoinMethod m) const {
    return gen_time_[static_cast<int>(m)];
  }
  /// Time spent inserting plans into the MEMO ("plan saving").
  const TimeAccumulator& save_time() const { return save_time_; }
  /// Time spent creating entries (base plans, logical properties).
  const TimeAccumulator& init_time() const { return init_time_; }
  /// Total time spent inside visitor callbacks (to derive pure
  /// enumeration time from the run's total).
  double visitor_seconds() const {
    return init_time_.TotalSeconds() + on_join_time_.TotalSeconds();
  }

 private:
  struct MergeCandidate {
    std::vector<ColumnRef> outer_cols;
    std::vector<ColumnRef> inner_cols;
  };

  /// Inserts with optional pilot-pass pruning; times as plan saving.
  bool SavePlan(MemoEntry* entry, Plan* plan);

  /// Canonicalizes `order` within entry `j` and collapses it to DC if no
  /// longer useful (retired) there.
  OrderProperty OutputOrder(const OrderProperty& order, const MemoEntry& j)
      const;

  /// Cheapest plan of `e` satisfying the given order (canonical in `e`)
  /// and partition, adding SORT / Repartition enforcers on top of the
  /// cheapest plan when nothing qualifies naturally. May return nullptr
  /// only if the entry has no plans at all.
  const Plan* InputPlan(MemoEntry* e, const OrderProperty& order,
                        const PartitionProperty& partition);

  /// A replicated version of e's cheapest plan (natural or enforced).
  const Plan* ReplicatedInput(MemoEntry* e);

  void GenerateNljn(MemoEntry* s, MemoEntry* l, MemoEntry* j,
                    const std::vector<int>& preds);

  /// The inner-side index-scan plan usable for index nested-loops on this
  /// join (inner is a single base table owning an index whose leading key
  /// column is a join column), or nullptr.
  const Plan* IndexProbeInner(const MemoEntry& l,
                              const std::vector<int>& preds) const;
  void GenerateMgjn(MemoEntry* s, MemoEntry* l, MemoEntry* j,
                    const std::vector<MergeCandidate>& candidates);
  void GenerateHsjn(MemoEntry* s, MemoEntry* l, MemoEntry* j,
                    const std::vector<int>& preds);

  /// Candidate output partitions for a join on the given (J-canonical)
  /// join columns: co-location-valid partitions present in either input,
  /// or a fresh repartition target when none exists (the DB2 heuristic
  /// that creates new interesting partition values, §4).
  std::vector<PartitionProperty> JoinPartitions(
      const MemoEntry& s, const MemoEntry& l,
      const std::vector<ColumnRef>& jcols, const MemoEntry& j) const;

  const QueryGraph& graph_;
  MemoT* memo_;
  const CostModel& cost_;
  const CardinalityModel& card_;
  const InterestingOrders& interesting_;
  PlanGenOptions options_;

  JoinTypeCounts generated_;
  int64_t enforcers_ = 0;
  int64_t scan_plans_ = 0;
  int64_t pruned_by_pilot_ = 0;

  TimeAccumulator gen_time_[kNumJoinMethods];
  TimeAccumulator save_time_;
  TimeAccumulator init_time_;
  TimeAccumulator on_join_time_;
};

/// The serial plan generator every existing caller uses.
using PlanGenerator = PlanGeneratorT<Memo>;

}  // namespace cote

#endif  // COTE_OPTIMIZER_PLAN_GENERATOR_H_
