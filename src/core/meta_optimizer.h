#ifndef COTE_CORE_META_OPTIMIZER_H_
#define COTE_CORE_META_OPTIMIZER_H_

#include "core/estimator.h"
#include "optimizer/optimizer.h"
#include "session/session.h"

namespace cote {

/// \brief Configuration of the meta-optimizer (Figure 1).
struct MetaOptimizerOptions {
  OptimizerOptions low;   ///< cheap level compiled unconditionally
  OptimizerOptions high;  ///< expensive level, gated by the COTE
  TimeModel time_model;   ///< calibrated for the high level
  /// Reoptimize at the high level iff C < threshold · E, where C is the
  /// estimated high-level compilation time and E the estimated execution
  /// time of the low-level plan. 1.0 is the paper's plain comparison.
  double threshold = 1.0;
  /// Govern the high-level recompile with limits derived from the COTE
  /// estimate (DeriveLimits): the estimate that justified reoptimization
  /// also bounds it, so an under-estimated query degrades to the greedy
  /// plan instead of stalling compilation indefinitely.
  bool govern_high = false;
  /// Headroom factor of the derived limits: the high compile may spend up
  /// to this multiple of each estimated quantity (time, entries, plans)
  /// before tripping. Generous by default — the budget is a runaway guard,
  /// not a scheduler.
  double budget_headroom = 8.0;

  MetaOptimizerOptions() {
    low.level = OptimizationLevel::kLow;
    high.level = OptimizationLevel::kHigh;
  }
};

/// \brief Outcome of one meta-optimized compilation.
struct MetaOptimizeResult {
  OptimizeResult chosen;        ///< the plan actually produced
  bool reoptimized = false;     ///< true if the high level ran
  double low_exec_seconds = 0;  ///< E: est. execution time of the low plan
  double est_high_compile_seconds = 0;  ///< C: COTE estimate for high level
  CompileTimeEstimate estimate;
  double total_seconds = 0;  ///< low compile + estimation (+ high compile)
  /// The limits the high-level recompile ran under (all-unlimited when
  /// govern_high is off or the high level did not run). Whether the
  /// compile actually tripped them is chosen.degraded.
  ResourceLimits high_limits;
};

/// \brief A simple meta-optimizer (MOP): chooses the optimization level.
///
/// Implements Figure 1 of the paper: compile at the low level; estimate
/// the high-level compilation time with the COTE; if the query would
/// finish executing (on the low plan) before high-level optimization would
/// even complete, keep the low plan — otherwise recompile high.
///
/// Holds one CompilationSession per level (plus the estimator's own), so
/// a meta-optimizer driving a workload keeps all three warm across
/// Compile() calls instead of rebuilding models per query.
class MetaOptimizer {
 public:
  explicit MetaOptimizer(MetaOptimizerOptions options = {});

  StatusOr<MetaOptimizeResult> Compile(const QueryGraph& graph) const;

  /// Budget for a high-level compile, derived from its COTE estimate with
  /// `budget_headroom` slack. Delegates to the shared LimitsPolicy
  /// (session/limits_policy.h) — the same rule the compile service's
  /// admission stage uses — with this meta-optimizer's headroom: deadline
  /// = headroom × estimated seconds (floored at 1ms), entry cap =
  /// headroom × estimated entries (floor 64), plan cap = headroom ×
  /// (estimated join plans + completion plans) (floor 256).
  ResourceLimits DeriveLimits(const CompileTimeEstimate& estimate) const;

 private:
  MetaOptimizerOptions options_;
  // Mutable: Compile() is const in its results; the sessions underneath
  // reuse warm arenas across calls.
  mutable CompilationSession low_session_;
  mutable CompilationSession high_session_;
  CompileTimeEstimator estimator_;
};

}  // namespace cote

#endif  // COTE_CORE_META_OPTIMIZER_H_
