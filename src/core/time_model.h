#ifndef COTE_CORE_TIME_MODEL_H_
#define COTE_CORE_TIME_MODEL_H_

#include <string>

#include "optimizer/stats.h"

namespace cote {

/// \brief The paper's linear compilation-time model (§3.5):
///
///   T = Tinst · Σ_t (Ct · Pt)
///
/// Here the machine-dependent Tinst is folded into the coefficients, so
/// `ct[t]` is directly "seconds per generated plan of join method t". An
/// optional intercept absorbs the per-query fixed cost (parsing, base
/// plans, final sort). The coefficients are fit by regression on a
/// training workload (TimeModelCalibrator) and must be re-fit when the
/// optimizer changes — just as the paper refits per DB2 release.
struct TimeModel {
  double ct[kNumJoinMethods] = {0, 0, 0};
  double intercept = 0;

  double EstimateSeconds(const JoinTypeCounts& plans) const {
    double t = intercept;
    for (int m = 0; m < kNumJoinMethods; ++m) {
      t += ct[m] * static_cast<double>(plans.counts[m]);
    }
    return t;
  }

  /// Integer-ish ratio rendering like "5.0 : 2.0 : 4.0" (MGJN : NLJN :
  /// HSJN scaled so the smallest is 1), comparable to the paper's reported
  /// DB2 ratios (serial 5:2:4, parallel 6:1:2 for Cm:Cn:Ch).
  std::string RatioString() const;
};

}  // namespace cote

#endif  // COTE_CORE_TIME_MODEL_H_
