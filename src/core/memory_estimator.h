#ifndef COTE_CORE_MEMORY_ESTIMATOR_H_
#define COTE_CORE_MEMORY_ESTIMATOR_H_

#include "core/estimator.h"
#include "optimizer/optimizer.h"

namespace cote {

/// \brief §6.2: estimating optimizer memory consumption before optimizing.
///
/// Assuming each stored plan occupies roughly the same space, the MEMO
/// memory needed at a level is lower-bounded by the summed interesting
/// property list lengths across entries times the per-plan size — which the
/// plan-estimate pass computes as a by-product. A meta-optimizer can skip a
/// level whose lower bound already exceeds the memory budget.
struct MemoryEstimate {
  int64_t estimated_bytes = 0;  ///< lower bound from property lists
  int64_t plan_slots = 0;       ///< estimated number of stored plans
};

class MemoryEstimator {
 public:
  explicit MemoryEstimator(const OptimizerOptions& options,
                           const PlanCounterOptions& counter_options = {})
      : estimator_(TimeModel{}, options, counter_options) {}

  MemoryEstimate Estimate(const QueryGraph& graph) const {
    CompileTimeEstimate est = estimator_.Estimate(graph);
    return MemoryEstimate{est.estimated_memo_bytes, est.plan_slots};
  }

  /// True if optimization at this level cannot fit into `budget_bytes` —
  /// the lower bound alone exceeds it, so there is no point starting.
  bool ExceedsBudget(const QueryGraph& graph, int64_t budget_bytes) const {
    return Estimate(graph).estimated_bytes > budget_bytes;
  }

 private:
  CompileTimeEstimator estimator_;
};

}  // namespace cote

#endif  // COTE_CORE_MEMORY_ESTIMATOR_H_
