#ifndef COTE_CORE_JOIN_COUNT_BASELINE_H_
#define COTE_CORE_JOIN_COUNT_BASELINE_H_

#include <cstdint>

#include "optimizer/enumerator.h"
#include "query/query_graph.h"

namespace cote {

/// \brief The prior art the paper improves on: join-count complexity
/// estimation (Ono & Lohman, §2.2).
///
/// Estimates compilation time as (number of joins) × (time per join),
/// assuming every join costs the same to optimize — the assumption the
/// paper shows fails by up to 20× within a star-query batch (§5.3).
/// Join counting is done two ways:
///  * closed formulas for the special query shapes that have them
///    (chains, stars, cliques — unordered join pairs, no Cartesian
///    products, full bushy space);
///  * by reusing the join enumerator with a counting-only visitor, which
///    works for arbitrary (including cyclic) graphs — counting joins in a
///    general cyclic graph analytically is #P-complete.
class JoinCountBaseline {
 public:
  /// Chain of n tables: (n³ − n) / 6 unordered joins.
  static int64_t ChainJoins(int n);
  /// Star with one hub and n−1 satellites: (n−1) · 2^(n−2).
  static int64_t StarJoins(int n);
  /// Clique of n tables: (3^n − 2^(n+1) + 1) / 2.
  static int64_t CliqueJoins(int n);

  /// Counts joins by running the enumerator with a no-op visitor.
  /// `joins_unordered` of the returned stats is the Ono–Lohman metric.
  static EnumerationStats CountJoins(const QueryGraph& graph,
                                     const EnumeratorOptions& options);

  /// Baseline time estimate: joins × seconds_per_join.
  static double EstimateSeconds(int64_t joins, double seconds_per_join) {
    return static_cast<double>(joins) * seconds_per_join;
  }
};

}  // namespace cote

#endif  // COTE_CORE_JOIN_COUNT_BASELINE_H_
