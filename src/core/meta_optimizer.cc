#include "core/meta_optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "session/limits_policy.h"

namespace cote {

MetaOptimizer::MetaOptimizer(MetaOptimizerOptions options)
    : options_(std::move(options)),
      low_session_(options_.low),
      high_session_(options_.high),
      estimator_(options_.time_model, options_.high) {}

StatusOr<MetaOptimizeResult> MetaOptimizer::Compile(
    const QueryGraph& graph) const {
  StopWatch watch;
  MetaOptimizeResult result;

  // 1. Low-level optimization: fast, always runs.
  auto low_result = low_session_.Optimize(graph);
  if (!low_result.ok()) return low_result.status();

  // 2. E: estimated execution time of the low plan, priced with the
  // high-level session's cost model (the environment reoptimization
  // would target).
  const CostModel& cost = high_session_.context().cost_model();
  result.low_exec_seconds = cost.CostToSeconds(low_result->best_plan->cost);

  // 3. C: estimated compilation time at the high level.
  result.estimate = estimator_.Estimate(graph);
  result.est_high_compile_seconds = result.estimate.estimated_seconds;

  // 4. Decide: reoptimize only if high-level compilation is cheap relative
  // to the potential execution win (E > C / threshold).
  if (result.est_high_compile_seconds <
      options_.threshold * result.low_exec_seconds) {
    StatusOr<OptimizeResult> high_result = [&] {
      if (!options_.govern_high) return high_session_.Optimize(graph);
      result.high_limits = DeriveLimits(result.estimate);
      return high_session_.Optimize(graph, result.high_limits);
    }();
    if (!high_result.ok()) return high_result.status();
    result.chosen = std::move(high_result).value();
    result.reoptimized = true;
  } else {
    result.chosen = std::move(low_result).value();
    result.reoptimized = false;
  }
  result.total_seconds = watch.ElapsedSeconds();
  return result;
}

ResourceLimits MetaOptimizer::DeriveLimits(
    const CompileTimeEstimate& estimate) const {
  LimitsPolicy policy;
  policy.headroom = options_.budget_headroom;
  return policy.Derive(estimate);
}

}  // namespace cote
