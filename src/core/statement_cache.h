#ifndef COTE_CORE_STATEMENT_CACHE_H_
#define COTE_CORE_STATEMENT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "query/query_graph.h"

namespace cote {

class CompilationSession;

/// \brief The straightforward alternative the paper dismisses (§1.2):
/// cache the measured compilation time of each compiled statement and
/// reuse it for subsequent *similar* statements.
///
/// Works well for repeated statements; useless for the ad-hoc queries the
/// paper targets, because a new join graph never hits the cache. The
/// bench `statement_cache` quantifies exactly that.
///
/// The cache is keyed by a structural signature of the bound query: table
/// identities, join predicates (columns + kind + derived flag +
/// selectivity bit pattern), local predicate columns, operators and
/// selectivity bit patterns, GROUP BY / ORDER BY columns, section
/// lengths, and the first-rows marker. Literal *text* is not hashed, but
/// the binder derives selectivities from literals, so two statements
/// share an entry exactly when their compilations see identical inputs —
/// `c LIKE 'A%'` and `c LIKE 'B%'` match (same 1/10 selectivity) while
/// range predicates over different literals usually do not. Hashing the
/// selectivity bit patterns mirrors CompilationContext::Fingerprint; the
/// looser literal-blind signature returned stale compile times for
/// queries differing only in selectivity.
///
/// Eviction is LRU. Thread-safe: a single mutex guards the map and the
/// recency list (the critical sections are a hash probe and a splice), and
/// the hit/miss counters are atomic — the SessionPool's workers share one
/// cache while compiling a batch. The guard discipline is statically
/// checked: `lru_` / `map_` are COTE_GUARDED_BY(mu_), so an access
/// outside a MutexLock fails the Clang -Wthread-safety build. Signature
/// computation and compile-through stay outside the lock by design (see
/// CompileThrough), which the annotations permit — they touch no guarded
/// member.
class CompileTimeCache {
 public:
  /// `capacity` is clamped to at least 1: a zero-capacity cache would
  /// evict every entry in the same Insert() that added it.
  explicit CompileTimeCache(size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Structural signature; stable across runs.
  static uint64_t Signature(const QueryGraph& graph);

  /// Returns the cached compile time, refreshing LRU recency.
  std::optional<double> Lookup(const QueryGraph& graph) COTE_EXCLUDES(mu_);

  /// Records the measured compile time of a statement.
  void Insert(const QueryGraph& graph, double seconds) COTE_EXCLUDES(mu_);

  /// Compile-through: returns the cached compile time on a hit; on a miss
  /// compiles `graph` through `session` (plan mode), inserts the measured
  /// time under the statement's signature, and returns it. The session's
  /// warm context makes this the natural shape for a cache sitting in
  /// front of a batch compiler. The compile itself runs outside the cache
  /// lock; concurrent callers must use distinct sessions (sessions are
  /// single-threaded), and two workers racing on the same signature both
  /// compile, with the later Insert refreshing the entry — benign for a
  /// cache of measurements.
  StatusOr<double> CompileThrough(CompilationSession* session,
                                  const QueryGraph& graph) COTE_EXCLUDES(mu_);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const COTE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return map_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t signature;
    double seconds;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  std::list<Entry> lru_ COTE_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_
      COTE_GUARDED_BY(mu_);
  std::atomic<int64_t> hits_{0};   // relaxed counters, never lock-held
  std::atomic<int64_t> misses_{0};
};

}  // namespace cote

#endif  // COTE_CORE_STATEMENT_CACHE_H_
