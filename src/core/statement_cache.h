#ifndef COTE_CORE_STATEMENT_CACHE_H_
#define COTE_CORE_STATEMENT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "query/query_graph.h"

namespace cote {

class CompilationSession;

/// Coherent counter snapshot taken under the cache mutex — the pair
/// (hits, misses) is consistent with (evictions, admission_rejections,
/// insertions, size) at one instant, unlike reading two relaxed atomics
/// independently while workers race between the loads.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  /// Inserts refused by the admission policy (new entries only; refreshing
  /// an existing entry never consults the policy).
  int64_t admission_rejections = 0;
  int64_t insertions = 0;
  int64_t size = 0;

  double HitRate() const {
    int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Admission policy consulted before a *new* entry is cached. Plain
/// fn-pointer + ctx (same shape as the pipeline stage observer) so the
/// hot path stays allocation-free. `cost_seconds` is whatever the caller
/// passed as the admission cost — the compile service passes the
/// *estimated* compile seconds so cheap statements never displace
/// expensive ones. Called under the cache mutex: must be fast and must
/// not reenter the cache.
using CacheAdmissionFn = bool (*)(void* ctx, uint64_t signature,
                                  double cost_seconds);

/// \brief The straightforward alternative the paper dismisses (§1.2):
/// cache the measured compilation time of each compiled statement and
/// reuse it for subsequent *similar* statements.
///
/// Works well for repeated statements; useless for the ad-hoc queries the
/// paper targets, because a new join graph never hits the cache. The
/// bench `statement_cache` quantifies exactly that.
///
/// The cache is keyed by a structural signature of the bound query: table
/// identities, join predicates (columns + kind + derived flag +
/// selectivity bit pattern), local predicate columns, operators and
/// selectivity bit patterns, GROUP BY / ORDER BY columns, section
/// lengths, and the first-rows marker. Literal *text* is not hashed, but
/// the binder derives selectivities from literals, so two statements
/// share an entry exactly when their compilations see identical inputs —
/// `c LIKE 'A%'` and `c LIKE 'B%'` match (same 1/10 selectivity) while
/// range predicates over different literals usually do not. Hashing the
/// selectivity bit patterns mirrors CompilationContext::Fingerprint; the
/// looser literal-blind signature returned stale compile times for
/// queries differing only in selectivity.
///
/// Eviction is LRU. Thread-safe: a single mutex guards the map and the
/// recency list (the critical sections are a hash probe and a splice), and
/// the hit/miss counters are atomic — the SessionPool's workers share one
/// cache while compiling a batch. The guard discipline is statically
/// checked: `lru_` / `map_` are COTE_GUARDED_BY(mu_), so an access
/// outside a MutexLock fails the Clang -Wthread-safety build. Signature
/// computation and compile-through stay outside the lock by design (see
/// CompileThrough), which the annotations permit — they touch no guarded
/// member.
class CompileTimeCache {
 public:
  /// `capacity` is clamped to at least 1: a zero-capacity cache would
  /// evict every entry in the same Insert() that added it.
  explicit CompileTimeCache(size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Structural signature; stable across runs.
  static uint64_t Signature(const QueryGraph& graph);

  /// Returns the cached compile time, refreshing LRU recency.
  std::optional<double> Lookup(const QueryGraph& graph) COTE_EXCLUDES(mu_);

  /// Records the measured compile time of a statement. Returns true when
  /// the entry is now cached (inserted or refreshed), false when the
  /// admission policy rejected it. The two-argument form uses `seconds`
  /// itself as the admission cost; the three-argument form lets the caller
  /// gate on a different quantity (the compile service gates on the
  /// *estimated* seconds while caching the *measured* seconds).
  bool Insert(const QueryGraph& graph, double seconds) COTE_EXCLUDES(mu_) {
    return Insert(graph, seconds, seconds);
  }
  bool Insert(const QueryGraph& graph, double seconds,
              double admission_cost_seconds) COTE_EXCLUDES(mu_);

  /// Installs the admission policy (null fn = admit everything, the
  /// default). Not synchronized against concurrent Lookup/Insert: install
  /// before sharing the cache across workers.
  void SetAdmissionPolicy(CacheAdmissionFn fn, void* ctx) {
    admission_fn_ = fn;
    admission_ctx_ = ctx;
  }

  /// Compile-through: returns the cached compile time on a hit; on a miss
  /// compiles `graph` through `session` (plan mode), inserts the measured
  /// time under the statement's signature, and returns it. The session's
  /// warm context makes this the natural shape for a cache sitting in
  /// front of a batch compiler. The compile itself runs outside the cache
  /// lock; concurrent callers must use distinct sessions (sessions are
  /// single-threaded), and two workers racing on the same signature both
  /// compile, with the later Insert refreshing the entry — benign for a
  /// cache of measurements.
  StatusOr<double> CompileThrough(CompilationSession* session,
                                  const QueryGraph& graph) COTE_EXCLUDES(mu_);

  /// Approximate fast reads (relaxed); use Stats() for a coherent view.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const COTE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return map_.size();
  }
  size_t capacity() const { return capacity_; }

  /// Coherent snapshot under `mu_`. The hit/miss counters stay relaxed
  /// atomics on the hot path; reading them while holding the mutex makes
  /// them consistent with the lock-guarded counters because every counter
  /// update happens inside a critical section on the same mutex.
  CacheStats Stats() const COTE_EXCLUDES(mu_);

 private:
  struct Entry {
    uint64_t signature;
    double seconds;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  std::list<Entry> lru_ COTE_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_
      COTE_GUARDED_BY(mu_);
  std::atomic<int64_t> hits_{0};   // relaxed counters, updated lock-held
  std::atomic<int64_t> misses_{0};
  // Cold-path counters only touched inside Insert's critical section.
  int64_t evictions_ COTE_GUARDED_BY(mu_) = 0;
  int64_t admission_rejections_ COTE_GUARDED_BY(mu_) = 0;
  int64_t insertions_ COTE_GUARDED_BY(mu_) = 0;
  CacheAdmissionFn admission_fn_ = nullptr;  // install-before-share
  void* admission_ctx_ = nullptr;
};

}  // namespace cote

#endif  // COTE_CORE_STATEMENT_CACHE_H_
