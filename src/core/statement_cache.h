#ifndef COTE_CORE_STATEMENT_CACHE_H_
#define COTE_CORE_STATEMENT_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/status.h"
#include "query/query_graph.h"

namespace cote {

class CompilationSession;

/// \brief The straightforward alternative the paper dismisses (§1.2):
/// cache the measured compilation time of each compiled statement and
/// reuse it for subsequent *similar* statements.
///
/// Works well for repeated statements; useless for the ad-hoc queries the
/// paper targets, because a new join graph never hits the cache. The
/// bench `statement_cache` quantifies exactly that.
///
/// The cache is keyed by a structural signature of the bound query: table
/// identities, join predicates (columns + kind), local predicate columns
/// and operators, GROUP BY / ORDER BY columns and first-rows marker —
/// but NOT literal values, so `c_city = 'A'` and `c_city = 'B'` share an
/// entry (their compilations are identical in shape).
///
/// Eviction is LRU. Not thread-safe (like the rest of the library).
class CompileTimeCache {
 public:
  explicit CompileTimeCache(size_t capacity = 1024) : capacity_(capacity) {}

  /// Structural signature; stable across runs.
  static uint64_t Signature(const QueryGraph& graph);

  /// Returns the cached compile time, refreshing LRU recency.
  std::optional<double> Lookup(const QueryGraph& graph);

  /// Records the measured compile time of a statement.
  void Insert(const QueryGraph& graph, double seconds);

  /// Compile-through: returns the cached compile time on a hit; on a miss
  /// compiles `graph` through `session` (plan mode), inserts the measured
  /// time under the statement's signature, and returns it. The session's
  /// warm context makes this the natural shape for a cache sitting in
  /// front of a batch compiler.
  StatusOr<double> CompileThrough(CompilationSession* session,
                                  const QueryGraph& graph);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t signature;
    double seconds;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace cote

#endif  // COTE_CORE_STATEMENT_CACHE_H_
