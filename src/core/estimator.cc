#include "core/estimator.h"

#include "common/timer.h"

namespace cote {

CompileTimeEstimator::CompileTimeEstimator(
    const TimeModel& time_model, const OptimizerOptions& optimizer_options,
    const PlanCounterOptions& counter_options)
    : time_model_(time_model),
      opt_options_(optimizer_options),
      counter_options_(counter_options) {
  // The counter must model the same environment the optimizer plans for.
  counter_options_.parallel =
      optimizer_options.num_nodes > 1 || optimizer_options.plangen.parallel;
  counter_options_.eager_partitions =
      optimizer_options.plangen.eager_partitions;
}

CompileTimeEstimate CompileTimeEstimator::Estimate(
    const QueryGraph& graph) const {
  StopWatch watch;
  CompileTimeEstimate out;

  // Plan-estimate mode uses the simple cardinality model: no key/FD
  // refinement, exactly like the paper's prototype (§4/§5.2).
  CardinalityModel simple_card(graph, /*use_key_refinement=*/false);
  InterestingOrders interesting(graph);
  PlanCounter counter(graph, interesting, simple_card, counter_options_);

  out.enumeration =
      RunEnumeration(graph, opt_options_.enumeration, &counter);

  out.plan_estimates = counter.estimated_plans();
  out.estimated_seconds = time_model_.EstimateSeconds(out.plan_estimates);
  out.plan_slots = counter.TotalPlanSlots();
  out.estimated_memo_bytes = out.plan_slots * kBytesPerPlan;
  out.estimation_seconds = watch.ElapsedSeconds();
  return out;
}

CompileTimeEstimate CompileTimeEstimator::Estimate(
    const MultiBlockQuery& query) const {
  CompileTimeEstimate total;
  for (const QueryGraph* block : query.AllBlocks()) {
    CompileTimeEstimate e = Estimate(*block);
    total.plan_estimates += e.plan_estimates;
    total.enumeration.joins_unordered += e.enumeration.joins_unordered;
    total.enumeration.joins_ordered += e.enumeration.joins_ordered;
    total.enumeration.entries_created += e.enumeration.entries_created;
    total.estimated_seconds += e.estimated_seconds;
    total.estimation_seconds += e.estimation_seconds;
    total.estimated_memo_bytes += e.estimated_memo_bytes;
    total.plan_slots += e.plan_slots;
  }
  return total;
}

}  // namespace cote
