#ifndef COTE_CORE_PLAN_COUNTER_H_
#define COTE_CORE_PLAN_COUNTER_H_

#include <deque>
#include <optional>
#include <vector>

#include "common/flat_set_index.h"
#include "optimizer/cost/cardinality.h"
#include "optimizer/enumerator.h"
#include "optimizer/properties/interesting_orders.h"
#include "optimizer/properties/partition_property.h"
#include "optimizer/stats.h"
#include "query/query_graph.h"

namespace cote {

/// How multiple physical property types are tracked (§3.4).
enum class MultiPropertyMode {
  /// Orthogonal properties keep separate lists; plan counts multiply the
  /// list lengths. Cheap, slightly underestimates (retired orders paired
  /// with live partitions are dropped).
  kSeparate,
  /// One compound list of (order, partition) vectors; a compound value
  /// retires only when every component does. More precise, more state.
  kCompound,
};

/// \brief Options of the plan-counting visitor.
struct PlanCounterOptions {
  bool parallel = false;
  MultiPropertyMode multi_property = MultiPropertyMode::kSeparate;
  /// Eager partition policy (mirrors PlanGenOptions::eager_partitions):
  /// seed base-table partition lists with every join-column partition.
  bool eager_partitions = false;

  /// §4 item 4: propagate property values only on the first join that
  /// reaches a MEMO entry (joins reaching the same entry propagate nearly
  /// identical sets). Turning this off propagates on every join (ablation).
  bool first_join_propagation_only = true;
};

/// \brief Plan-estimate mode: the paper's Table 3 algorithm.
///
/// A JoinVisitor that *counts* the join plans the normal-mode generator
/// would create, without generating any plan or estimating any execution
/// cost. Per MEMO entry it accumulates interesting property value lists
/// bottom-up (initialize()); per enumerated join it propagates the lists
/// and accumulates per-join-method plan counts (accumulate_plans()):
///
///  * NLJN (full order propagation): plans = |outer order list| + 1 (DC),
///    times the partition multiplier in parallel mode;
///  * MGJN (partial): plans = |listp ∪ listc| — the propagatable merge
///    orders plus their coverage (subsuming orders, §4 item 2), times the
///    partition multiplier;
///  * HSJN (none): one plan per co-location alternative.
///
/// Cardinality uses the *simple* model (no key refinement), as in the
/// paper's prototype — which can flip the Cartesian-product heuristic and
/// cause the small join-count deviations analysed in §5.2.
class PlanCounter : public JoinVisitor {
 public:
  PlanCounter(const QueryGraph& graph, const InterestingOrders& interesting,
              const CardinalityModel& cardinality,
              const PlanCounterOptions& options);

  // JoinVisitor interface -------------------------------------------------
  void InitializeEntry(TableSet s) override;
  double EntryCardinality(TableSet s) override;
  void OnJoin(TableSet outer, TableSet inner,
              const std::vector<int>& pred_indices, bool cartesian) override;

  // Results ----------------------------------------------------------------
  const JoinTypeCounts& estimated_plans() const { return estimated_; }

  /// Zeroes the per-run plan counts (entry property state is untouched).
  /// A session calls this before every estimate run so a warm re-run over
  /// saturated entry states reports exactly the fresh-run counts.
  void ResetCounts() { estimated_ = JoinTypeCounts{}; }

  /// Attaches a resource budget: every counted plan is charged against it,
  /// so a plan cap trips in estimate mode at the same semantic point as in
  /// plan mode (plans the generator *would* create). Null detaches; the
  /// budget must outlive every governed run.
  void set_budget(ResourceBudget* budget) { budget_ = budget; }

  /// Retargets the counter at another query: drops all entry state and
  /// counts, then points at the new graph/orders/cardinality. The state
  /// arena, set index, and every scratch buffer keep their storage, so a
  /// rebind to a same-or-smaller query performs only the per-entry list
  /// rebuild — the session layer's cross-query allocation-steady
  /// guarantee rests on this.
  void Rebind(const QueryGraph& graph, const InterestingOrders& interesting,
              const CardinalityModel& cardinality);

  // ---- Parallel enumeration support ---------------------------------
  //
  // In shard mode (BindShard) this counter is one worker's private view
  // of a parent counter during a parallel rank: lookups of lower-rank
  // entries resolve read-only through the parent (complete up to rank k-1
  // under the rank-barrier invariant), while the entry being filled lives
  // in the shard's own arena. The shard therefore touches no shared
  // mutable state inside a rank; at the barrier the coordinator calls
  // parent.AdoptShardRank(shard) for every shard in worker order, which
  // replays the serial dense-id creation order exactly (worker slices are
  // contiguous in ascending mask order).

  /// Puts this counter in shard mode, resolving input entries through
  /// `parent`. Pass nullptr to return to the normal (serial) mode.
  void BindShard(const PlanCounter* parent) {
    parent_ = parent;
    shard_current_bits_ = 0;
    created_masks_.clear();
  }

  /// Coordinator-side half of the rank barrier: adopts every entry state
  /// `shard` created during the rank just finished (swapping the state
  /// into this counter's arena at its serial dense id) and folds the
  /// shard's per-rank plan counts. On a warm re-estimate the target slot
  /// already exists and is simply replaced — the shard rebuilt the
  /// identical state, by the same dedupe-idempotence that makes serial
  /// warm reruns exact.
  void AdoptShardRank(PlanCounter* shard);

  /// Property-list state of one MEMO entry.
  struct EntryState {
    ColumnEquivalence equiv;
    double cardinality = -1;
    std::vector<OrderProperty> orders;
    std::vector<PartitionProperty> partitions;
    /// kCompound mode only: (order, partition) vectors; order may be None
    /// when that component has retired.
    std::vector<std::pair<OrderProperty, PartitionProperty>> compound;
    // First-join-only bookkeeping (§4 item 4): the first unordered split
    // reaching this entry is the one allowed to propagate properties.
    bool propagated = false;
    uint64_t first_outer_bits = 0;
    uint64_t first_inner_bits = 0;

    /// Returns the state to its just-constructed condition while keeping
    /// the capacity of every property list (vector clear() retains
    /// storage; the equivalence keeps its bucket array), so a recycled
    /// arena slot rebuilds without re-growing.
    void Clear() {
      equiv.Clear();
      cardinality = -1;
      orders.clear();
      partitions.clear();
      compound.clear();
      propagated = false;
      first_outer_bits = 0;
      first_inner_bits = 0;
    }
  };

  const EntryState* FindState(TableSet s) const;

  /// Σ over entries of (|orders|+1) × max(1,|partitions|): the MEMO-size
  /// proxy used by the §6.2 memory estimator.
  int64_t TotalPlanSlots() const;

  int64_t num_entries() const { return static_cast<int64_t>(live_states_); }

 private:
  /// Built on first use (sized from graph_.num_tables()).
  FlatSetIndex& EntryIndex() const;
  /// The single accumulation funnel of OnJoin: adds `count` plans of
  /// `method` and charges an attached budget.
  void AddPlans(JoinMethod method, int64_t count);
  EntryState& State(TableSet s);
  /// Read-only state of a join *input* (strictly lower rank than the
  /// entry being filled): the parent's merged state in shard mode, the
  /// local state otherwise.
  const EntryState& InputState(TableSet s);
  void PropagateOrders(const EntryState& from, TableSet j, EntryState* to);
  void PropagatePartitions(const EntryState& from, TableSet j,
                           EntryState* to);

  /// Co-location-valid output partitions for a join on `jcols` (canonical
  /// in j's equivalence), mirroring the generator's JoinPartitions and the
  /// DB2 repartition heuristic (§4): if no input partition matches a join
  /// column, a fresh partition on the join columns is introduced. Fills
  /// `out` (cleared first) so the per-join caller can reuse one buffer.
  void JoinPartitions(const EntryState& s, const EntryState& l,
                      const std::vector<ColumnRef>& jcols,
                      const EntryState& j,
                      std::vector<PartitionProperty>* out);

  // Pointers (never null) rather than references so Rebind can retarget
  // the counter; the constructor still takes references.
  const QueryGraph* graph_;
  const InterestingOrders* interesting_;
  const CardinalityModel* card_;
  PlanCounterOptions options_;

  JoinTypeCounts estimated_;
  /// Optional governance: non-null while an estimate run is governed.
  ResourceBudget* budget_ = nullptr;
  /// Shard mode (BindShard): the parent counter input lookups fall back
  /// to. The states_ deque then serves as a per-rank arena — slots are
  /// claimed sequentially per new mask and drained by AdoptShardRank.
  const PlanCounter* parent_ = nullptr;
  /// One-slot cache key for the mask this shard is currently filling
  /// (its state is states_[live_states_ - 1]).
  uint64_t shard_current_bits_ = 0;
  /// Masks created this rank, in creation (= ascending mask) order.
  std::vector<uint64_t> created_masks_;
  /// Per-entry state lives in a deque arena (stable references across
  /// growth) addressed through the flat set index: for n <= 20 a state
  /// lookup on the enumeration hot path is one array load instead of a
  /// hash probe. After a Rebind the arena outlives the index's dense ids:
  /// `live_states_` bounds the prefix in use, and slots past it are
  /// cleared recycled capacity.
  mutable std::optional<FlatSetIndex> index_;
  std::deque<EntryState> states_;
  size_t live_states_ = 0;
  std::vector<int> pred_scratch_;
  // OnJoin scratch (cleared per call, capacity retained): the counting
  // loop runs once per enumerated join, so freshly allocating these
  // buffers dominated estimate-mode profiles on large star queries.
  // listp_/listc_ hold indices into canon_inputs_, which is deduped, so
  // index identity doubles as value identity.
  std::vector<ColumnRef> jcols_;
  std::vector<PartitionProperty> jparts_;
  std::vector<OrderProperty> canon_inputs_;
  std::vector<OrderProperty> distinct_orders_;
  std::vector<int> listp_;
  std::vector<int> listc_;
  // Property-canonicalization scratch: CanonicalizeInto / the scratch
  // Useful overload rewrite these in place, so a steady-state run (every
  // entry and property value already seen) touches no heap at all —
  // the invariant tests/optimizer/hotpath_alloc_test.cc locks in.
  std::vector<const OrderInterest*> active_scratch_;
  std::vector<ColumnRef> cols_scratch_;
  OrderProperty raw_order_scratch_;
  OrderProperty canon_order_scratch_;
  OrderProperty interest_scratch_;
  PartitionProperty part_scratch_;
};

}  // namespace cote

#endif  // COTE_CORE_PLAN_COUNTER_H_
