#include "core/plan_counter.h"

#include <algorithm>

#include "common/check.h"

namespace cote {

PlanCounter::PlanCounter(const QueryGraph& graph,
                         const InterestingOrders& interesting,
                         const CardinalityModel& cardinality,
                         const PlanCounterOptions& options)
    : graph_(&graph),
      interesting_(&interesting),
      card_(&cardinality),
      options_(options) {}

void PlanCounter::Rebind(const QueryGraph& graph,
                         const InterestingOrders& interesting,
                         const CardinalityModel& cardinality) {
  graph_ = &graph;
  interesting_ = &interesting;
  card_ = &cardinality;
  estimated_ = JoinTypeCounts{};
  // Recycle the arena: clear the live prefix in place (capacity retained)
  // and re-key the set index for the new table count. Slots past
  // live_states_ were already cleared by an earlier rebind.
  for (size_t i = 0; i < live_states_; ++i) states_[i].Clear();
  live_states_ = 0;
  shard_current_bits_ = 0;
  created_masks_.clear();
  if (index_.has_value()) index_->Reset(graph.num_tables());
}

FlatSetIndex& PlanCounter::EntryIndex() const {
  // hotpath-ok: lazily built once per session, then rebound in place
  if (!index_.has_value()) index_.emplace(graph_->num_tables());
  return *index_;
}

PlanCounter::EntryState& PlanCounter::State(TableSet s) {
  COTE_DCHECK(!s.empty());
  COTE_DCHECK(graph_->AllTables().ContainsAll(s));
  if (parent_ != nullptr) {
    // Shard mode: within a rank this shard only ever writes the state of
    // the mask it is currently filling, so state lookup is a one-slot
    // cache over a sequentially claimed arena — no index, no sharing.
    if (live_states_ > 0 && s.bits() == shard_current_bits_) {
      return states_[live_states_ - 1];
    }
    if (live_states_ == states_.size()) states_.emplace_back();
    EntryState& state = states_[live_states_];
    // Recycled slots hold whatever AdoptShardRank swapped out of the
    // parent (stale on a warm rerun), so always clear on claim.
    state.Clear();
    ++live_states_;
    shard_current_bits_ = s.bits();
    created_masks_.push_back(s.bits());
    return state;
  }
  bool created = false;
  const int32_t idx = EntryIndex().FindOrInsert(s.bits(), &created);
  if (created) {
    // The index hands out dense ids in insertion order, so a fresh id must
    // land exactly one past the end of the live prefix — either a recycled
    // (cleared) arena slot or a brand-new one.
    COTE_CHECK_EQ(static_cast<size_t>(idx), live_states_);
    if (live_states_ == states_.size()) states_.emplace_back();
    ++live_states_;
  }
  COTE_DCHECK_LT(static_cast<size_t>(idx), live_states_);
  return states_[idx];
}

const PlanCounter::EntryState* PlanCounter::FindState(TableSet s) const {
  const int32_t idx = EntryIndex().Find(s.bits());
  if (idx < 0) return nullptr;
  COTE_DCHECK_LT(static_cast<size_t>(idx), live_states_);
  return &states_[idx];
}

double PlanCounter::EntryCardinality(TableSet s) {
  if (parent_ != nullptr) {
    // Shard mode: the enumerator only asks about lower-rank sets, whose
    // merged parent state (when present) always has its cardinality set
    // by InitializeEntry — a pure read, safe across workers.
    const EntryState* state = parent_->FindState(s);
    if (state != nullptr && state->cardinality >= 0) return state->cardinality;
    return card_->JoinRows(s);
  }
  const int32_t idx = EntryIndex().Find(s.bits());
  if (idx >= 0) return MemoizedJoinRows(*card_, s, &states_[idx].cardinality);
  return card_->JoinRows(s);
}

const PlanCounter::EntryState& PlanCounter::InputState(TableSet s) {
  if (parent_ != nullptr) {
    const EntryState* state = parent_->FindState(s);
    COTE_DCHECK(state != nullptr);
    return *state;
  }
  return State(s);
}

void PlanCounter::AdoptShardRank(PlanCounter* shard) {
  for (size_t i = 0; i < shard->created_masks_.size(); ++i) {
    bool created = false;
    const int32_t idx =
        EntryIndex().FindOrInsert(shard->created_masks_[i], &created);
    if (created) {
      // Cold run: the adopted mask extends the dense-id space by exactly
      // one slot, in the serial creation order (State() discipline).
      COTE_CHECK_EQ(static_cast<size_t>(idx), live_states_);
      if (live_states_ == states_.size()) states_.emplace_back();
      ++live_states_;
    }
    // Warm rerun: the slot already exists and the shard rebuilt equal
    // content, so replacing it is the parallel analogue of the serial
    // warm rerun's idempotent re-push. Swap (not move) so both sides
    // keep their list capacity.
    std::swap(states_[idx], shard->states_[i]);
  }
  shard->created_masks_.clear();
  shard->live_states_ = 0;
  shard->shard_current_bits_ = 0;
  estimated_ += shard->estimated_;
  shard->estimated_ = JoinTypeCounts{};
}

void PlanCounter::InitializeEntry(TableSet s) {
  EntryState& state = State(s);
  // Logical properties, computed once per entry (equivalence is needed to
  // canonicalize and dedupe property values — §3.3: "equivalence needs to
  // be checked for each enumerated join"). The internal-predicate gather
  // walks only the set's own edges, in the ascending index order the old
  // full-list scan produced.
  graph_->InternalPredicates(s, &pred_scratch_);
  for (int pi : pred_scratch_) {
    const JoinPredicate& p = graph_->join_predicates()[pi];
    if (p.kind != JoinKind::kInner) continue;
    state.equiv.AddEquivalence(p.left, p.right);
  }
  state.cardinality = card_->JoinRows(s);
  if (s.size() > 1) return;

  // initialize(): populate the interesting property lists of single-table
  // entries per the generation policy of each property (§3.3 / Table 3).
  //
  // Orders use the eager policy (§4 item 1): the precomputed interesting
  // orders applicable to this table seed the list.
  interesting_->ActiveInterests(s, &active_scratch_);
  for (const OrderInterest* interest : active_scratch_) {
    interest->order.CanonicalizeInto(state.equiv, &canon_order_scratch_);
    const OrderProperty& o = canon_order_scratch_;
    if (o.IsNone()) continue;
    if (std::find(state.orders.begin(), state.orders.end(), o) ==
        state.orders.end()) {
      state.orders.push_back(o);
    }
  }

  // Natural orders delivered by index scans also live in the MEMO when
  // they remain useful (an index order subsuming an interesting order is
  // the source of coverage plans); the eager initialization includes them.
  const Table* base_table = graph_->table_ref(s.First()).table;
  for (const Index& idx : base_table->indexes()) {
    cols_scratch_.clear();
    for (int ord : idx.key_columns) cols_scratch_.emplace_back(s.First(), ord);
    raw_order_scratch_.Assign(cols_scratch_);
    raw_order_scratch_.CanonicalizeInto(state.equiv, &canon_order_scratch_);
    const OrderProperty& o = canon_order_scratch_;
    if (o.IsNone() ||
        !interesting_->Useful(o, s, state.equiv, &interest_scratch_)) {
      continue;
    }
    if (std::find(state.orders.begin(), state.orders.end(), o) ==
        state.orders.end()) {
      state.orders.push_back(o);
    }
  }

  // Partitions use the lazy policy: only the physical partitioning of the
  // base table seeds the list (§4, parallel version). Seeding dedupes like
  // every other list push so that re-running enumeration over the same
  // counter stays idempotent (the un-guarded push was a latent bug: a
  // second run would duplicate every base-table partition value).
  if (options_.parallel) {
    const int t = s.First();
    const Table* table = graph_->table_ref(t).table;
    const PartitioningSpec& spec = table->partitioning();
    auto seed = [&state](PartitionProperty p) {
      if (std::find(state.partitions.begin(), state.partitions.end(), p) ==
          state.partitions.end()) {
        state.partitions.push_back(std::move(p));
      }
    };
    switch (spec.kind) {
      case PartitionKind::kHash: {
        cols_scratch_.clear();
        for (int ord : spec.key_columns) cols_scratch_.emplace_back(t, ord);
        seed(PartitionProperty::Hash(cols_scratch_));
        break;
      }
      case PartitionKind::kReplicated:
        seed(PartitionProperty::Replicated());
        break;
      case PartitionKind::kSingleNode:
        seed(PartitionProperty::SingleNode());
        break;
    }
  }

  if (options_.parallel && options_.eager_partitions) {
    const int t = s.First();
    for (const JoinPredicate& pred : graph_->join_predicates()) {
      ColumnRef side = pred.SideIn(t);
      if (!side.valid()) continue;
      PartitionProperty target =
          PartitionProperty::Hash({side}).Canonicalize(state.equiv);
      if (std::find(state.partitions.begin(), state.partitions.end(),
                    target) == state.partitions.end()) {
        state.partitions.push_back(target);
      }
    }
  }

  if (options_.multi_property == MultiPropertyMode::kCompound) {
    PartitionProperty base = options_.parallel && !state.partitions.empty()
                                 ? state.partitions[0]
                                 : PartitionProperty::Serial();
    // Deduped for the same idempotence reason as the partition seeding.
    auto seed = [&state](const OrderProperty& o, const PartitionProperty& p) {
      auto pair = std::make_pair(o, p);
      if (std::find(state.compound.begin(), state.compound.end(), pair) ==
          state.compound.end()) {
        state.compound.push_back(std::move(pair));
      }
    };
    seed(OrderProperty::None(), base);
    for (const OrderProperty& o : state.orders) seed(o, base);
  }
}

void PlanCounter::PropagateOrders(const EntryState& from, TableSet j,
                                  EntryState* to) {
  for (const OrderProperty& o : from.orders) {
    o.CanonicalizeInto(to->equiv, &canon_order_scratch_);
    const OrderProperty& canon = canon_order_scratch_;
    if (canon.IsNone()) continue;
    // Retired by the join, or not interesting above `j`?
    if (!interesting_->Useful(canon, j, to->equiv, &interest_scratch_)) {
      continue;
    }
    // Equivalent to a property already in the list?
    if (std::find(to->orders.begin(), to->orders.end(), canon) !=
        to->orders.end()) {
      continue;
    }
    to->orders.push_back(canon);
  }
}

void PlanCounter::PropagatePartitions(const EntryState& from, TableSet j,
                                      EntryState* to) {
  (void)j;
  for (const PartitionProperty& p : from.partitions) {
    p.CanonicalizeInto(to->equiv, &part_scratch_);
    const PartitionProperty& canon = part_scratch_;
    if (std::find(to->partitions.begin(), to->partitions.end(), canon) ==
        to->partitions.end()) {
      to->partitions.push_back(canon);
    }
  }
}

void PlanCounter::JoinPartitions(const EntryState& s, const EntryState& l,
                                 const std::vector<ColumnRef>& jcols,
                                 const EntryState& j,
                                 std::vector<PartitionProperty>* out_vec) {
  std::vector<PartitionProperty>& out = *out_vec;
  out.clear();
  if (!options_.parallel) {
    out.push_back(PartitionProperty::Serial());
    return;
  }
  auto add = [&out](const PartitionProperty& p) {
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  };
  for (const EntryState* e : {&s, &l}) {
    for (const PartitionProperty& p : e->partitions) {
      p.CanonicalizeInto(j.equiv, &part_scratch_);
      const PartitionProperty& canon = part_scratch_;
      if (canon.kind() == PartitionProperty::Kind::kHash &&
          canon.KeysSubsetOf(jcols)) {
        add(canon);
      }
    }
  }
  auto has_single = [](const EntryState& e) {
    for (const PartitionProperty& p : e.partitions) {
      if (p.kind() == PartitionProperty::Kind::kSingleNode) return true;
    }
    return false;
  };
  if (has_single(s) && has_single(l)) add(PartitionProperty::SingleNode());
  // The DB2 repartition heuristic: no input partitioned on a join column →
  // both sides are repartitioned, creating a new partition value (§4).
  if (out.empty() && !jcols.empty()) add(PartitionProperty::Hash(jcols));
  if (out.empty()) add(PartitionProperty::SingleNode());
}

void PlanCounter::OnJoin(TableSet outer, TableSet inner,
                         const std::vector<int>& pred_indices,
                         bool cartesian) {
  COTE_DCHECK(!outer.empty());
  COTE_DCHECK(!inner.empty());
  COTE_DCHECK(!outer.Overlaps(inner));
  const EntryState& s = InputState(outer);
  const EntryState& l = InputState(inner);
  TableSet jset = outer.Union(inner);
  EntryState& j = State(jset);

  // ---- Property propagation (bottom-up list accumulation).
  //
  // Orders propagate from the outer input (NLJN propagates its outer's
  // order; merge orders are join-column orders which retire here anyway);
  // the twin (inner, outer) emission propagates the other side. With the
  // first-join-only optimization (§4 item 4) only the first unordered
  // split propagates — later joins into the same entry contribute nearly
  // identical sets.
  bool may_propagate = true;
  if (options_.first_join_propagation_only) {
    if (!j.propagated) {
      j.propagated = true;
      j.first_outer_bits = outer.bits();
      j.first_inner_bits = inner.bits();
    } else {
      bool same_pair = (j.first_outer_bits == outer.bits() &&
                        j.first_inner_bits == inner.bits()) ||
                       (j.first_outer_bits == inner.bits() &&
                        j.first_inner_bits == outer.bits());
      may_propagate = same_pair;
    }
  }
  if (may_propagate) {
    PropagateOrders(s, jset, &j);
    PropagateOrders(l, jset, &j);
    if (options_.parallel) {
      PropagatePartitions(s, jset, &j);
      PropagatePartitions(l, jset, &j);
    }
    if (options_.multi_property == MultiPropertyMode::kCompound) {
      for (const EntryState* e : {&s, &l}) {
        for (const auto& [o, pt] : e->compound) {
          OrderProperty canon_o = o.Canonicalize(j.equiv);
          if (!canon_o.IsNone() &&
              !interesting_->Useful(canon_o, jset, j.equiv)) {
            canon_o = OrderProperty::None();  // component retired
          }
          PartitionProperty canon_p = pt.Canonicalize(j.equiv);
          auto pair = std::make_pair(canon_o, canon_p);
          if (std::find(j.compound.begin(), j.compound.end(), pair) ==
              j.compound.end()) {
            j.compound.push_back(pair);
          }
        }
      }
    }
  }

  // ---- accumulate_plans(): per-join-method plan counting (Table 3).

  // J-canonical join column representatives.
  jcols_.clear();
  for (int pi : pred_indices) {
    ColumnRef rep = j.equiv.Find(graph_->join_predicates()[pi].left);
    if (std::find(jcols_.begin(), jcols_.end(), rep) == jcols_.end()) {
      jcols_.push_back(rep);
    }
  }
  JoinPartitions(s, l, jcols_, j, &jparts_);
  bool fresh_target =
      options_.parallel && jparts_.size() == 1 && !jcols_.empty() &&
      jparts_[0] == PartitionProperty::Hash(jcols_) &&
      [&] {
        for (const EntryState* e : {&s, &l}) {
          for (const PartitionProperty& p : e->partitions) {
            p.CanonicalizeInto(j.equiv, &part_scratch_);
            if (part_scratch_ == jparts_[0]) return false;
          }
        }
        return true;
      }();
  if (fresh_target) {
    // The new partition value becomes interesting for the joined entry.
    if (std::find(j.partitions.begin(), j.partitions.end(), jparts_[0]) ==
        j.partitions.end()) {
      j.partitions.push_back(jparts_[0]);
    }
  }

  // NLJN: full order propagation — one plan per outer interesting-order
  // value plus one for DC; in parallel mode, multiplied by the number of
  // co-location alternatives plus the broadcast-inner variant (§3.4: the
  // orthogonal lists multiply). Only outer-enabled inputs reach here (the
  // enumerator filters), implementing §4 item 3.
  int64_t outer_orders;
  if (options_.multi_property == MultiPropertyMode::kCompound &&
      options_.parallel) {
    // Distinct order components among the compound pairs (None included
    // via retired-order pairs) — compound values pair each with the same
    // partition alternatives. distinct_orders_ is per-call scratch; a
    // local vector here would allocate once per enumerated join.
    distinct_orders_.clear();
    distinct_orders_.push_back(OrderProperty::None());
    for (const auto& [o, pt] : s.compound) {
      (void)pt;
      if (std::find(distinct_orders_.begin(), distinct_orders_.end(), o) ==
          distinct_orders_.end()) {
        distinct_orders_.push_back(o);
      }
    }
    outer_orders = static_cast<int64_t>(distinct_orders_.size()) - 1;
  } else {
    outer_orders = static_cast<int64_t>(s.orders.size());
  }
  // Index nested-loops variant: available when the inner input is a base
  // table with an index led by a join column (and, in parallel mode, the
  // inner is co-located or replicated) — one extra plan per outer order.
  int64_t inl_variant = 0;
  if (inner.size() == 1 && !pred_indices.empty()) {
    const int t = inner.First();
    const Table* table = graph_->table_ref(t).table;
    for (const Index& idx : table->indexes()) {
      if (idx.key_columns.empty()) continue;
      ColumnRef leading(t, idx.key_columns[0]);
      bool leads_join = false;
      for (int pi : pred_indices) {
        if (graph_->join_predicates()[pi].SideIn(t) == leading) {
          leads_join = true;
          break;
        }
      }
      if (!leads_join) continue;
      if (options_.parallel) {
        bool colocated = false;
        for (const PartitionProperty& p : l.partitions) {
          p.CanonicalizeInto(j.equiv, &part_scratch_);
          const PartitionProperty& canon = part_scratch_;
          colocated |=
              canon.kind() == PartitionProperty::Kind::kReplicated ||
              (canon.kind() == PartitionProperty::Kind::kHash &&
               canon.KeysSubsetOf(jcols_));
        }
        if (!colocated) continue;
      }
      inl_variant = 1;
      break;
    }
  }

  const int64_t colocation_alternatives =
      options_.parallel ? static_cast<int64_t>(jparts_.size()) + 1 : 1;
  AddPlans(JoinMethod::kNljn,
           (outer_orders + 1) * (colocation_alternatives + inl_variant));

  if (cartesian) return;  // no MGJN/HSJN for cross products

  // MGJN: partial propagation — listp = interesting orders from the inputs
  // matching the join columns; listc = coverage (orders subsuming a listp
  // member, §3.3/§4 item 2).
  //
  // Canonicalize each input order once (deduped); listp_/listc_ hold
  // indices into canon_inputs_, so dedupe is index identity and the
  // OrderProperty values are never copied again. canon_inputs_ is
  // size-tracked scratch: slots persist across calls (clear() would free
  // each element's column buffer), CanonicalizeInto rewrites them in
  // place, and num_canon bounds the live prefix.
  int num_canon = 0;
  for (const EntryState* e : {&s, &l}) {
    for (const OrderProperty& o : e->orders) {
      if (num_canon == static_cast<int>(canon_inputs_.size())) {
        canon_inputs_.emplace_back();
      }
      OrderProperty& slot = canon_inputs_[num_canon];
      o.CanonicalizeInto(j.equiv, &slot);
      bool dup = false;
      for (int i = 0; i < num_canon; ++i) {
        if (canon_inputs_[i] == slot) {
          dup = true;
          break;
        }
      }
      if (!dup) ++num_canon;
    }
  }
  listp_.clear();
  for (int i = 0; i < num_canon; ++i) {
    const OrderProperty& canon = canon_inputs_[i];
    // Propagatable by MGJN: every column of the order is a join column.
    bool all_join_cols = !canon.IsNone();
    for (const ColumnRef& c : canon.columns()) {
      if (std::find(jcols_.begin(), jcols_.end(), c) == jcols_.end()) {
        all_join_cols = false;
        break;
      }
    }
    if (all_join_cols) listp_.push_back(i);
  }
  listc_.clear();
  for (int i = 0; i < num_canon; ++i) {
    for (int p : listp_) {
      if (canon_inputs_[p].StrictlySubsumedBy(canon_inputs_[i])) {
        listc_.push_back(i);
        break;
      }
    }
  }
  // |listp ∪ listc| — both are index sets into the deduped inputs.
  int64_t merge_variants = static_cast<int64_t>(listp_.size());
  for (int i : listc_) {
    if (std::find(listp_.begin(), listp_.end(), i) == listp_.end()) {
      ++merge_variants;
    }
  }
  AddPlans(JoinMethod::kMgjn,
           merge_variants * static_cast<int64_t>(jparts_.size()));

  // HSJN: no order propagation — one plan per co-location alternative,
  // plus the broadcast-inner variant in parallel mode.
  AddPlans(JoinMethod::kHsjn, static_cast<int64_t>(jparts_.size()));
  if (options_.parallel) {
    bool outer_all_replicated = true;
    for (const PartitionProperty& p : s.partitions) {
      if (p.kind() != PartitionProperty::Kind::kReplicated) {
        outer_all_replicated = false;
        break;
      }
    }
    if (!outer_all_replicated || s.partitions.empty()) {
      AddPlans(JoinMethod::kHsjn, 1);
    }
  }
}

void PlanCounter::AddPlans(JoinMethod method, int64_t count) {
  estimated_[method] += count;
  if (budget_ != nullptr) budget_->ChargePlans(count);
}

int64_t PlanCounter::TotalPlanSlots() const {
  int64_t total = 0;
  // Only the live prefix: slots past live_states_ are recycled capacity
  // left over from a larger query before a Rebind.
  for (size_t i = 0; i < live_states_; ++i) {
    const EntryState& state = states_[i];
    int64_t orders = static_cast<int64_t>(state.orders.size()) + 1;
    int64_t parts =
        options_.parallel
            ? std::max<int64_t>(1,
                                static_cast<int64_t>(state.partitions.size()))
            : 1;
    // First-rows queries keep the pipelinable property as an extra Pareto
    // dimension, roughly doubling the distinct property combinations.
    int64_t pipeline = graph_->wants_first_rows() ? 2 : 1;
    total += orders * parts * pipeline;
  }
  return total;
}

}  // namespace cote
