#ifndef COTE_CORE_MULTILEVEL_H_
#define COTE_CORE_MULTILEVEL_H_

#include <vector>

#include "core/estimator.h"
#include "session/session.h"

namespace cote {

/// \brief §6.2: piggybacked estimation of several optimization levels in a
/// single enumeration pass.
///
/// As long as the highest level's search space subsumes the others (full
/// bushy ⊇ composite-inner ≤ k ⊇ left-deep), one run of the enumerator at
/// the highest level can classify each enumerated join by the smallest
/// level that would also enumerate it — a join with composite-inner size m
/// belongs to every level with limit ≥ m — and accumulate per-level plan
/// counts simultaneously, amortizing the estimation overhead.
class MultiLevelEstimator {
 public:
  /// `inner_limits` defines the levels, e.g. {1, 2, 64}: left-deep,
  /// inner ≤ 2, full bushy. Must be sorted ascending; the largest is the
  /// level actually enumerated.
  MultiLevelEstimator(const TimeModel& time_model,
                      OptimizerOptions base_options,
                      std::vector<int> inner_limits,
                      const PlanCounterOptions& counter_options = {});

  struct LevelEstimate {
    int inner_limit = 0;
    JoinTypeCounts plan_estimates;
    int64_t joins_ordered = 0;
    double estimated_seconds = 0;
  };

  struct Result {
    std::vector<LevelEstimate> levels;
    /// Overhead of the single shared pass.
    double estimation_seconds = 0;
  };

  Result Estimate(const QueryGraph& graph) const;

 private:
  TimeModel time_model_;
  std::vector<int> inner_limits_;
  /// Source of the per-query models (simple cardinality, interesting
  /// orders) and of the reconciled counter options; the per-level
  /// counters are built on top of it. Mutable: Estimate() is const in
  /// its results while the context rebinds underneath.
  mutable CompilationSession session_;
};

}  // namespace cote

#endif  // COTE_CORE_MULTILEVEL_H_
