#include "core/join_count_baseline.h"

#include "optimizer/cost/cardinality.h"

namespace cote {

namespace {

/// Counting-only visitor: provides cardinalities for the Cartesian
/// heuristic but records nothing — the enumerator's own stats carry the
/// join counts.
class CountingVisitor : public JoinVisitor {
 public:
  explicit CountingVisitor(const QueryGraph& graph)
      : card_(graph, /*use_key_refinement=*/false) {}

  void InitializeEntry(TableSet s) override { (void)s; }
  double EntryCardinality(TableSet s) override { return card_.JoinRows(s); }
  void OnJoin(TableSet outer, TableSet inner,
              const std::vector<int>& pred_indices,
              bool cartesian) override {
    (void)outer;
    (void)inner;
    (void)pred_indices;
    (void)cartesian;
  }

 private:
  CardinalityModel card_;
};

}  // namespace

int64_t JoinCountBaseline::ChainJoins(int n) {
  if (n < 2) return 0;
  int64_t nn = n;
  return (nn * nn * nn - nn) / 6;
}

int64_t JoinCountBaseline::StarJoins(int n) {
  if (n < 2) return 0;
  return static_cast<int64_t>(n - 1) << (n - 2);
}

int64_t JoinCountBaseline::CliqueJoins(int n) {
  if (n < 2) return 0;
  int64_t pow3 = 1;
  for (int i = 0; i < n; ++i) pow3 *= 3;
  int64_t pow2 = int64_t{1} << (n + 1);
  return (pow3 - pow2 + 1) / 2;
}

EnumerationStats JoinCountBaseline::CountJoins(
    const QueryGraph& graph, const EnumeratorOptions& options) {
  CountingVisitor visitor(graph);
  return RunEnumeration(graph, options, &visitor);
}

}  // namespace cote
