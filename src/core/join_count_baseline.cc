#include "core/join_count_baseline.h"

#include "optimizer/cost/cardinality.h"
#include "session/compilation_context.h"

namespace cote {

namespace {

/// Counting-only visitor: provides cardinalities for the Cartesian
/// heuristic but records nothing — the enumerator's own stats carry the
/// join counts. The cardinality model is borrowed from a compilation
/// context (models are built only in the session layer).
class CountingVisitor : public JoinVisitor {
 public:
  explicit CountingVisitor(const CardinalityModel& card) : card_(card) {}

  void InitializeEntry(TableSet s) override { (void)s; }
  double EntryCardinality(TableSet s) override { return card_.JoinRows(s); }
  void OnJoin(TableSet outer, TableSet inner,
              const std::vector<int>& pred_indices,
              bool cartesian) override {
    (void)outer;
    (void)inner;
    (void)pred_indices;
    (void)cartesian;
  }

 private:
  const CardinalityModel& card_;
};

}  // namespace

int64_t JoinCountBaseline::ChainJoins(int n) {
  if (n < 2) return 0;
  int64_t nn = n;
  return (nn * nn * nn - nn) / 6;
}

int64_t JoinCountBaseline::StarJoins(int n) {
  if (n < 2) return 0;
  return static_cast<int64_t>(n - 1) << (n - 2);
}

int64_t JoinCountBaseline::CliqueJoins(int n) {
  if (n < 2) return 0;
  int64_t pow3 = 1;
  for (int i = 0; i < n; ++i) pow3 *= 3;
  int64_t pow2 = int64_t{1} << (n + 1);
  return (pow3 - pow2 + 1) / 2;
}

EnumerationStats JoinCountBaseline::CountJoins(
    const QueryGraph& graph, const EnumeratorOptions& options) {
  OptimizerOptions opt;
  opt.enumeration = options;
  CompilationContext ctx(std::move(opt));
  ctx.Reset(graph);
  CountingVisitor visitor(ctx.simple_cardinality());
  return ctx.Enumerate(&visitor);
}

}  // namespace cote
