#include "core/statement_cache.h"

#include <cstring>
#include <functional>

#include "session/session.h"

namespace cote {

namespace {

inline void Mix(uint64_t* h, uint64_t v) {
  // boost::hash_combine-style mixing with a 64-bit constant.
  *h ^= v + 0x9e3779b97f4a7c15ULL + (*h << 12) + (*h >> 4);
}

/// Selectivities enter the signature by bit pattern, exactly like
/// CompilationContext::Fingerprint: any selectivity difference — however
/// small — changes what the optimizer costs, so reusing a cached time
/// across it would be a stale read.
inline uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t CompileTimeCache::Signature(const QueryGraph& graph) {
  uint64_t h = 0xc07e5eed;
  std::hash<std::string> shash;
  // Each list section mixes its length before its elements, so an element
  // sliding across a section boundary (e.g. a column moving from GROUP BY
  // to ORDER BY) cannot reproduce another query's mix sequence.
  Mix(&h, static_cast<uint64_t>(graph.num_tables()));
  for (int t = 0; t < graph.num_tables(); ++t) {
    Mix(&h, shash(graph.table_ref(t).table->name()));
    Mix(&h, graph.table_ref(t).inner_only ? 7 : 3);
  }
  Mix(&h, graph.join_predicates().size());
  for (const JoinPredicate& p : graph.join_predicates()) {
    Mix(&h, p.left.Encode());
    Mix(&h, p.right.Encode());
    Mix(&h, static_cast<uint64_t>(p.kind));
    Mix(&h, p.derived ? 0xd1 : 0xd2);
    Mix(&h, DoubleBits(p.selectivity));
  }
  Mix(&h, graph.local_predicates().size());
  for (const LocalPredicate& p : graph.local_predicates()) {
    Mix(&h, p.column.Encode());
    Mix(&h, static_cast<uint64_t>(p.op));
    Mix(&h, DoubleBits(p.selectivity));
  }
  Mix(&h, graph.group_by().size());
  for (const ColumnRef& c : graph.group_by()) Mix(&h, c.Encode() * 2654435761u);
  Mix(&h, graph.order_by().size());
  for (const ColumnRef& c : graph.order_by()) Mix(&h, c.Encode() * 40503u);
  Mix(&h, graph.wants_first_rows() ? 0xf17c4 : 0);
  Mix(&h, graph.has_aggregation() ? 0xa66 : 0);
  return h;
}

std::optional<double> CompileTimeCache::Lookup(const QueryGraph& graph) {
  uint64_t sig = Signature(graph);
  MutexLock lock(mu_);
  auto it = map_.find(sig);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Refresh recency.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->seconds;
}

bool CompileTimeCache::Insert(const QueryGraph& graph, double seconds,
                              double admission_cost_seconds) {
  uint64_t sig = Signature(graph);
  MutexLock lock(mu_);
  auto it = map_.find(sig);
  if (it != map_.end()) {
    // Refresh path: the entry already earned its slot, so the admission
    // policy is not consulted again.
    it->second->seconds = seconds;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  if (admission_fn_ != nullptr &&
      !admission_fn_(admission_ctx_, sig, admission_cost_seconds)) {
    ++admission_rejections_;
    return false;
  }
  lru_.push_front(Entry{sig, seconds});
  map_[sig] = lru_.begin();
  ++insertions_;
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().signature);
    lru_.pop_back();
    ++evictions_;
  }
  return true;
}

CacheStats CompileTimeCache::Stats() const {
  MutexLock lock(mu_);
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_;
  stats.admission_rejections = admission_rejections_;
  stats.insertions = insertions_;
  stats.size = static_cast<int64_t>(map_.size());
  return stats;
}

StatusOr<double> CompileTimeCache::CompileThrough(CompilationSession* session,
                                                 const QueryGraph& graph) {
  if (std::optional<double> cached = Lookup(graph)) return *cached;
  StatusOr<OptimizeResult> result = session->Optimize(graph);
  if (!result.ok()) return result.status();
  double seconds = result->stats.total_seconds;
  Insert(graph, seconds);
  return seconds;
}

}  // namespace cote
