#ifndef COTE_CORE_MODEL_IO_H_
#define COTE_CORE_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "core/time_model.h"

namespace cote {

/// \brief Persistence for calibrated time models.
///
/// Calibration is per release and per machine (§3.5: "rerun the regression
/// for new releases"), so deployments calibrate once and load the result
/// at startup. The format is a small self-describing text file:
///
///   cote-time-model v1
///   nljn <seconds-per-plan>
///   mgjn <seconds-per-plan>
///   hsjn <seconds-per-plan>
///   intercept <seconds>
///
/// Numbers round-trip exactly (hex float rendering).
Status SaveTimeModel(const std::string& path, const TimeModel& model);

StatusOr<TimeModel> LoadTimeModel(const std::string& path);

/// Serializes to / parses from the file format without touching disk.
std::string TimeModelToString(const TimeModel& model);
StatusOr<TimeModel> TimeModelFromString(const std::string& text);

}  // namespace cote

#endif  // COTE_CORE_MODEL_IO_H_
