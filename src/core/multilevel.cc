#include "core/multilevel.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/timer.h"

namespace cote {

namespace {

/// Fans enumerator callbacks out to one PlanCounter per level, filtering
/// OnJoin by each level's composite-inner limit.
class DemuxVisitor : public JoinVisitor {
 public:
  DemuxVisitor(std::vector<std::unique_ptr<PlanCounter>> counters,
               std::vector<int> limits)
      : counters_(std::move(counters)),
        limits_(std::move(limits)),
        joins_per_level_(limits_.size(), 0) {}

  void InitializeEntry(TableSet s) override {
    for (auto& c : counters_) c->InitializeEntry(s);
  }
  double EntryCardinality(TableSet s) override {
    return counters_.back()->EntryCardinality(s);
  }
  void OnJoin(TableSet outer, TableSet inner,
              const std::vector<int>& pred_indices, bool cartesian) override {
    for (size_t i = 0; i < counters_.size(); ++i) {
      if (inner.size() <= limits_[i]) {
        counters_[i]->OnJoin(outer, inner, pred_indices, cartesian);
        ++joins_per_level_[i];
      }
    }
  }

  const PlanCounter& counter(size_t i) const { return *counters_[i]; }
  int64_t joins(size_t i) const { return joins_per_level_[i]; }

 private:
  std::vector<std::unique_ptr<PlanCounter>> counters_;
  std::vector<int> limits_;
  std::vector<int64_t> joins_per_level_;
};

}  // namespace

MultiLevelEstimator::MultiLevelEstimator(
    const TimeModel& time_model, OptimizerOptions base_options,
    std::vector<int> inner_limits, const PlanCounterOptions& counter_options)
    : time_model_(time_model),
      inner_limits_(std::move(inner_limits)),
      session_(std::move(base_options), counter_options) {
  assert(!inner_limits_.empty());
  assert(std::is_sorted(inner_limits_.begin(), inner_limits_.end()));
}

MultiLevelEstimator::Result MultiLevelEstimator::Estimate(
    const QueryGraph& graph) const {
  StopWatch watch;
  Result result;

  // The session context supplies the per-query models and the counter
  // options reconciled with the optimizer configuration; the N per-level
  // counters themselves are this estimator's own (they share one
  // enumeration pass, which no single session counter can express).
  CompilationContext& ctx = session_.context();
  ctx.Reset(graph);
  const CardinalityModel& simple_card = ctx.simple_cardinality();
  const InterestingOrders& interesting = ctx.interesting_orders();

  std::vector<std::unique_ptr<PlanCounter>> counters;
  for (size_t i = 0; i < inner_limits_.size(); ++i) {
    counters.push_back(std::make_unique<PlanCounter>(
        graph, interesting, simple_card, ctx.counter_options()));
  }
  DemuxVisitor demux(std::move(counters), inner_limits_);

  // Enumerate once, at the highest (most permissive) level.
  EnumeratorOptions enum_opts = ctx.options().enumeration;
  enum_opts.max_composite_inner = inner_limits_.back();
  RunEnumeration(graph, enum_opts, &demux);

  for (size_t i = 0; i < inner_limits_.size(); ++i) {
    LevelEstimate level;
    level.inner_limit = inner_limits_[i];
    level.plan_estimates = demux.counter(i).estimated_plans();
    level.joins_ordered = demux.joins(i);
    level.estimated_seconds =
        time_model_.EstimateSeconds(level.plan_estimates);
    result.levels.push_back(level);
  }
  result.estimation_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cote
