#include "core/multilevel.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/timer.h"

namespace cote {

namespace {

/// Fans enumerator callbacks out to one PlanCounter per level, filtering
/// OnJoin by each level's composite-inner limit.
class DemuxVisitor : public JoinVisitor {
 public:
  DemuxVisitor(std::vector<std::unique_ptr<PlanCounter>> counters,
               std::vector<int> limits)
      : counters_(std::move(counters)),
        limits_(std::move(limits)),
        joins_per_level_(limits_.size(), 0) {}

  void InitializeEntry(TableSet s) override {
    for (auto& c : counters_) c->InitializeEntry(s);
  }
  double EntryCardinality(TableSet s) override {
    return counters_.back()->EntryCardinality(s);
  }
  void OnJoin(TableSet outer, TableSet inner,
              const std::vector<int>& pred_indices, bool cartesian) override {
    for (size_t i = 0; i < counters_.size(); ++i) {
      if (inner.size() <= limits_[i]) {
        counters_[i]->OnJoin(outer, inner, pred_indices, cartesian);
        ++joins_per_level_[i];
      }
    }
  }

  const PlanCounter& counter(size_t i) const { return *counters_[i]; }
  int64_t joins(size_t i) const { return joins_per_level_[i]; }

 private:
  std::vector<std::unique_ptr<PlanCounter>> counters_;
  std::vector<int> limits_;
  std::vector<int64_t> joins_per_level_;
};

}  // namespace

MultiLevelEstimator::MultiLevelEstimator(
    const TimeModel& time_model, OptimizerOptions base_options,
    std::vector<int> inner_limits, const PlanCounterOptions& counter_options)
    : time_model_(time_model),
      base_options_(std::move(base_options)),
      inner_limits_(std::move(inner_limits)),
      counter_options_(counter_options) {
  assert(!inner_limits_.empty());
  assert(std::is_sorted(inner_limits_.begin(), inner_limits_.end()));
  counter_options_.parallel =
      base_options_.num_nodes > 1 || base_options_.plangen.parallel;
  counter_options_.eager_partitions = base_options_.plangen.eager_partitions;
}

MultiLevelEstimator::Result MultiLevelEstimator::Estimate(
    const QueryGraph& graph) const {
  StopWatch watch;
  Result result;

  CardinalityModel simple_card(graph, /*use_key_refinement=*/false);
  InterestingOrders interesting(graph);

  std::vector<std::unique_ptr<PlanCounter>> counters;
  for (size_t i = 0; i < inner_limits_.size(); ++i) {
    counters.push_back(std::make_unique<PlanCounter>(
        graph, interesting, simple_card, counter_options_));
  }
  DemuxVisitor demux(std::move(counters), inner_limits_);

  // Enumerate once, at the highest (most permissive) level.
  EnumeratorOptions enum_opts = base_options_.enumeration;
  enum_opts.max_composite_inner = inner_limits_.back();
  RunEnumeration(graph, enum_opts, &demux);

  for (size_t i = 0; i < inner_limits_.size(); ++i) {
    LevelEstimate level;
    level.inner_limit = inner_limits_[i];
    level.plan_estimates = demux.counter(i).estimated_plans();
    level.joins_ordered = demux.joins(i);
    level.estimated_seconds =
        time_model_.EstimateSeconds(level.plan_estimates);
    result.levels.push_back(level);
  }
  result.estimation_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cote
