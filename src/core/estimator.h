#ifndef COTE_CORE_ESTIMATOR_H_
#define COTE_CORE_ESTIMATOR_H_

#include "core/time_model.h"
#include "optimizer/optimizer.h"
#include "query/multi_block.h"
#include "session/session.h"

namespace cote {

// CompileTimeEstimate moved to session/compilation_stats.h (both pipeline
// modes speak it); it is re-exported here unchanged for existing callers.

/// \brief The COTE: compilation-time estimator (the paper's contribution).
///
/// Runs the *same* join enumerator the optimizer uses — with the same
/// knobs, so every customization (composite-inner limit, Cartesian rules,
/// outer-join eligibility) is reflected in the joins enumerated — but
/// installs the plan-counting visitor instead of the plan generator,
/// bypassing plan generation entirely (§3.1). Plan counts are converted to
/// seconds with a regression-calibrated TimeModel (§3.5).
///
///   CompileTimeEstimator cote(time_model, options);
///   CompileTimeEstimate est = cote.Estimate(graph);
///   // est.estimated_seconds ≈ Optimizer(options).Optimize(graph) time
///
/// Internally a thin veneer over an estimate-mode CompilationSession: the
/// counter, models, and arenas stay warm across Estimate() calls, so
/// estimating a workload through one estimator is allocation-steady while
/// producing exactly the per-query-construction numbers.
class CompileTimeEstimator {
 public:
  /// `optimizer_options` describe the optimization level whose compilation
  /// time is being estimated (the "high" level in the meta-optimizer).
  CompileTimeEstimator(const TimeModel& time_model,
                       const OptimizerOptions& optimizer_options,
                       const PlanCounterOptions& counter_options = {})
      : time_model_(time_model),
        session_(optimizer_options, counter_options) {}

  CompileTimeEstimate Estimate(const QueryGraph& graph) const {
    return session_.Estimate(graph, time_model_);
  }

  /// Multi-block queries (§3.3): each block is optimized with its own
  /// MEMO, so the estimates (plans, time, memory) sum over the blocks.
  CompileTimeEstimate Estimate(const MultiBlockQuery& query) const {
    return session_.Estimate(query, time_model_);
  }

  const TimeModel& time_model() const { return time_model_; }

  /// Bytes charged per plan slot in the memory lower bound.
  static constexpr int64_t kBytesPerPlan = CompileTimeEstimate::kBytesPerPlan;

 private:
  TimeModel time_model_;
  /// Pointer constness is not at play here — the member is mutable: a
  /// const Estimate() is pure in its *results* while the session reuses
  /// warm state underneath.
  mutable CompilationSession session_;
};

}  // namespace cote

#endif  // COTE_CORE_ESTIMATOR_H_
