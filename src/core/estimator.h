#ifndef COTE_CORE_ESTIMATOR_H_
#define COTE_CORE_ESTIMATOR_H_

#include "core/plan_counter.h"
#include "core/time_model.h"
#include "optimizer/optimizer.h"
#include "query/multi_block.h"

namespace cote {

/// \brief Everything one estimation run produces.
struct CompileTimeEstimate {
  /// Estimated number of join plans per join method (what Figure 5 plots
  /// against the instrumented actuals).
  JoinTypeCounts plan_estimates;
  /// Join counts seen during estimation (from the reused enumerator).
  EnumerationStats enumeration;
  /// Estimated compilation time via the linear time model (Figure 6).
  double estimated_seconds = 0;
  /// Wall time this estimate itself took — the overhead Figure 4 compares
  /// against the actual compilation time.
  double estimation_seconds = 0;
  /// §6.2: lower bound of MEMO memory at this level, from the interesting
  /// property list lengths × bytes per stored plan.
  int64_t estimated_memo_bytes = 0;
  int64_t plan_slots = 0;
};

/// \brief The COTE: compilation-time estimator (the paper's contribution).
///
/// Runs the *same* join enumerator the optimizer uses — with the same
/// knobs, so every customization (composite-inner limit, Cartesian rules,
/// outer-join eligibility) is reflected in the joins enumerated — but
/// installs the plan-counting visitor instead of the plan generator,
/// bypassing plan generation entirely (§3.1). Plan counts are converted to
/// seconds with a regression-calibrated TimeModel (§3.5).
///
///   CompileTimeEstimator cote(time_model, options);
///   CompileTimeEstimate est = cote.Estimate(graph);
///   // est.estimated_seconds ≈ Optimizer(options).Optimize(graph) time
class CompileTimeEstimator {
 public:
  /// `optimizer_options` describe the optimization level whose compilation
  /// time is being estimated (the "high" level in the meta-optimizer).
  CompileTimeEstimator(const TimeModel& time_model,
                       const OptimizerOptions& optimizer_options,
                       const PlanCounterOptions& counter_options = {});

  CompileTimeEstimate Estimate(const QueryGraph& graph) const;

  /// Multi-block queries (§3.3): each block is optimized with its own
  /// MEMO, so the estimates (plans, time, memory) sum over the blocks.
  CompileTimeEstimate Estimate(const MultiBlockQuery& query) const;

  const TimeModel& time_model() const { return time_model_; }

  /// Bytes charged per plan slot in the memory lower bound.
  static constexpr int64_t kBytesPerPlan = sizeof(Plan);

 private:
  TimeModel time_model_;
  OptimizerOptions opt_options_;
  PlanCounterOptions counter_options_;
};

}  // namespace cote

#endif  // COTE_CORE_ESTIMATOR_H_
