#include "core/model_io.h"

#include <cstdio>
#include <cstring>

#include "common/str_util.h"

namespace cote {

namespace {

constexpr char kHeader[] = "cote-time-model v1";

const char* FieldName(int m) {
  switch (static_cast<JoinMethod>(m)) {
    case JoinMethod::kNljn:
      return "nljn";
    case JoinMethod::kMgjn:
      return "mgjn";
    case JoinMethod::kHsjn:
      return "hsjn";
  }
  return "?";
}

}  // namespace

std::string TimeModelToString(const TimeModel& model) {
  std::string out = kHeader;
  out += "\n";
  for (int m = 0; m < kNumJoinMethods; ++m) {
    // Hex floats round-trip exactly.
    out += StrFormat("%s %a\n", FieldName(m), model.ct[m]);
  }
  out += StrFormat("intercept %a\n", model.intercept);
  return out;
}

StatusOr<TimeModel> TimeModelFromString(const std::string& text) {
  size_t pos = text.find('\n');
  if (pos == std::string::npos ||
      text.substr(0, pos) != kHeader) {
    return Status::InvalidArgument("not a cote-time-model v1 file");
  }
  TimeModel model;
  bool seen[kNumJoinMethods] = {false, false, false};
  bool seen_intercept = false;
  size_t start = pos + 1;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    char name[32];
    double value = 0;
    if (std::sscanf(line.c_str(), "%31s %la", name, &value) != 2) {
      return Status::InvalidArgument("malformed time-model line: " + line);
    }
    bool matched = false;
    for (int m = 0; m < kNumJoinMethods; ++m) {
      if (std::strcmp(name, FieldName(m)) == 0) {
        model.ct[m] = value;
        seen[m] = true;
        matched = true;
      }
    }
    if (std::strcmp(name, "intercept") == 0) {
      model.intercept = value;
      seen_intercept = true;
      matched = true;
    }
    if (!matched) {
      return Status::InvalidArgument("unknown time-model field: " +
                                     std::string(name));
    }
  }
  if (!seen[0] || !seen[1] || !seen[2] || !seen_intercept) {
    return Status::InvalidArgument("incomplete time-model file");
  }
  return model;
}

Status SaveTimeModel(const std::string& path, const TimeModel& model) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::string text = TimeModelToString(model);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

StatusOr<TimeModel> LoadTimeModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return TimeModelFromString(text);
}

}  // namespace cote
