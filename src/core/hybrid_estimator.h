#ifndef COTE_CORE_HYBRID_ESTIMATOR_H_
#define COTE_CORE_HYBRID_ESTIMATOR_H_

#include "core/estimator.h"
#include "core/statement_cache.h"

namespace cote {

/// \brief Statement cache in front of the COTE.
///
/// §1.2 dismisses the statement cache for ad-hoc queries but it is exactly
/// right for repeated statements (where the *measured* time beats any
/// model). Production systems want both: consult the cache first, fall
/// back to the model-based estimate on a miss, and feed measured times
/// back after each real compilation.
///
///   HybridEstimator est(model, options);
///   double t = est.EstimateSeconds(query);   // cache or COTE
///   ... compile ...
///   est.RecordMeasured(query, stats.total_seconds);
class HybridEstimator {
 public:
  HybridEstimator(const TimeModel& time_model,
                  const OptimizerOptions& optimizer_options,
                  size_t cache_capacity = 1024)
      : cote_(time_model, optimizer_options), cache_(cache_capacity) {}

  struct Result {
    double estimated_seconds = 0;
    bool from_cache = false;
    /// Filled only on a cache miss (the COTE pass ran).
    CompileTimeEstimate cote;
  };

  /// Cached measured time if this statement shape was compiled before,
  /// otherwise a fresh COTE estimate.
  Result Estimate(const QueryGraph& graph) {
    if (auto cached = cache_.Lookup(graph)) {
      return Result{*cached, true, {}};
    }
    Result r;
    r.cote = cote_.Estimate(graph);
    r.estimated_seconds = r.cote.estimated_seconds;
    r.from_cache = false;
    return r;
  }

  /// Feed back the measured compilation time after actually compiling.
  void RecordMeasured(const QueryGraph& graph, double seconds) {
    cache_.Insert(graph, seconds);
  }

  const CompileTimeCache& cache() const { return cache_; }

 private:
  CompileTimeEstimator cote_;
  CompileTimeCache cache_;
};

}  // namespace cote

#endif  // COTE_CORE_HYBRID_ESTIMATOR_H_
