#include "core/regression.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace cote {

std::string TimeModel::RatioString() const {
  // Paper order: Cm : Cn : Ch (MGJN first).
  double cm = ct[static_cast<int>(JoinMethod::kMgjn)];
  double cn = ct[static_cast<int>(JoinMethod::kNljn)];
  double ch = ct[static_cast<int>(JoinMethod::kHsjn)];
  double lo = std::min({cm > 0 ? cm : 1e300, cn > 0 ? cn : 1e300,
                        ch > 0 ? ch : 1e300});
  if (lo >= 1e300) return "0 : 0 : 0";
  return StrFormat("%.1f : %.1f : %.1f", cm / lo, cn / lo, ch / lo);
}

StatusOr<std::vector<double>> LeastSquares(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("regression needs matching X and y");
  }
  const size_t k = x[0].size();
  if (x.size() < k) {
    return Status::InvalidArgument("fewer observations than coefficients");
  }
  for (const auto& row : x) {
    if (row.size() != k) {
      return Status::InvalidArgument("ragged design matrix");
    }
  }

  // Normal equations A = XᵀX (k×k), b = Xᵀy.
  std::vector<std::vector<double>> a(k, std::vector<double>(k, 0.0));
  std::vector<double> b(k, 0.0);
  for (size_t r = 0; r < x.size(); ++r) {
    for (size_t i = 0; i < k; ++i) {
      b[i] += x[r][i] * y[r];
      for (size_t j = 0; j < k; ++j) a[i][j] += x[r][i] * x[r][j];
    }
  }

  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::InvalidArgument("design matrix is rank-deficient");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      double f = a[r][col] / a[col][col];
      for (size_t c = col; c < k; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> coef(k);
  for (size_t i = 0; i < k; ++i) coef[i] = b[i] / a[i][i];
  return coef;
}

void TimeModelCalibrator::AddObservation(const JoinTypeCounts& plans,
                                         double seconds) {
  plans_.push_back(plans);
  y_.push_back(seconds);
}

StatusOr<TimeModel> TimeModelCalibrator::Fit() const {
  if (y_.size() < 4) {
    return Status::InvalidArgument("need at least 4 training observations");
  }

  // One active-set pass: fit, clamp negative coefficients to zero, refit
  // over the survivors.
  std::vector<bool> active(kNumJoinMethods, true);
  TimeModel model;
  for (int pass = 0; pass < kNumJoinMethods + 1; ++pass) {
    std::vector<int> cols;
    for (int m = 0; m < kNumJoinMethods; ++m) {
      if (active[m]) cols.push_back(m);
    }
    std::vector<std::vector<double>> x;
    std::vector<double> y = y_;
    x.reserve(plans_.size());
    for (size_t r = 0; r < plans_.size(); ++r) {
      const JoinTypeCounts& p = plans_[r];
      double w = 1.0;
      if (relative_weighting_) w = 1.0 / std::max(y_[r], 1e-9);
      std::vector<double> row;
      for (int m : cols) {
        row.push_back(static_cast<double>(p.counts[m]) * w);
      }
      if (with_intercept_) row.push_back(w);
      x.push_back(std::move(row));
      y[r] = y_[r] * w;  // == 1.0 under relative weighting
    }
    auto coef = LeastSquares(x, y);
    if (!coef.ok()) return coef.status();

    model = TimeModel();
    bool all_nonneg = true;
    for (size_t i = 0; i < cols.size(); ++i) {
      model.ct[cols[i]] = (*coef)[i];
      if ((*coef)[i] < 0) {
        active[cols[i]] = false;
        model.ct[cols[i]] = 0;
        all_nonneg = false;
      }
    }
    if (with_intercept_) {
      model.intercept = std::max(0.0, (*coef)[cols.size()]);
    }
    if (all_nonneg) break;
    if (cols.size() <= 1) break;  // nothing left to drop
  }
  return model;
}

}  // namespace cote
