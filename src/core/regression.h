#ifndef COTE_CORE_REGRESSION_H_
#define COTE_CORE_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "core/time_model.h"
#include "optimizer/stats.h"

namespace cote {

/// \brief Ordinary least squares: minimizes ‖X·c − y‖².
///
/// Solves the normal equations XᵀX c = Xᵀy by Gaussian elimination with
/// partial pivoting. Fails on rank-deficient inputs. Rows of `x` are
/// observations; all rows must have the same width.
StatusOr<std::vector<double>> LeastSquares(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y);

/// \brief Fits a TimeModel from instrumented optimizer runs (§3.5).
///
/// Feed one AddObservation() per training query with the *actual* plan
/// counts and measured compilation time, then Fit(). Negative coefficients
/// (possible when a join method is rare in the training set) are clamped
/// to zero and the remaining coefficients are re-fit (one active-set
/// pass), keeping the model physically sensible.
class TimeModelCalibrator {
 public:
  /// `with_intercept` adds a per-query fixed-cost term (the paper's model
  /// has none). `relative_weighting` scales each observation by 1/time so
  /// the fit minimizes *relative* error — the metric the paper evaluates —
  /// instead of letting the largest queries dominate.
  explicit TimeModelCalibrator(bool with_intercept = true,
                               bool relative_weighting = false)
      : with_intercept_(with_intercept),
        relative_weighting_(relative_weighting) {}

  void AddObservation(const JoinTypeCounts& plans, double seconds);

  /// Convenience overload taking the optimizer's stats directly.
  void AddObservation(const OptimizeStats& stats) {
    AddObservation(stats.join_plans_generated, stats.total_seconds);
  }

  int num_observations() const { return static_cast<int>(y_.size()); }

  StatusOr<TimeModel> Fit() const;

 private:
  bool with_intercept_;
  bool relative_weighting_;
  std::vector<JoinTypeCounts> plans_;
  std::vector<double> y_;
};

}  // namespace cote

#endif  // COTE_CORE_REGRESSION_H_
