# Empty dependencies file for meta_optimizer_demo.
# This may be replaced when dependencies are built.
