file(REMOVE_RECURSE
  "CMakeFiles/meta_optimizer_demo.dir/meta_optimizer_demo.cpp.o"
  "CMakeFiles/meta_optimizer_demo.dir/meta_optimizer_demo.cpp.o.d"
  "meta_optimizer_demo"
  "meta_optimizer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_optimizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
