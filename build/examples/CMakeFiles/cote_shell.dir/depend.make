# Empty dependencies file for cote_shell.
# This may be replaced when dependencies are built.
