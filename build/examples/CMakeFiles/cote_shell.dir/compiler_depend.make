# Empty compiler generated dependencies file for cote_shell.
# This may be replaced when dependencies are built.
