file(REMOVE_RECURSE
  "CMakeFiles/cote_shell.dir/cote_shell.cpp.o"
  "CMakeFiles/cote_shell.dir/cote_shell.cpp.o.d"
  "cote_shell"
  "cote_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
