file(REMOVE_RECURSE
  "CMakeFiles/workload_advisor.dir/workload_advisor.cpp.o"
  "CMakeFiles/workload_advisor.dir/workload_advisor.cpp.o.d"
  "workload_advisor"
  "workload_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
