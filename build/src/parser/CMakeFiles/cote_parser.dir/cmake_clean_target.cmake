file(REMOVE_RECURSE
  "libcote_parser.a"
)
