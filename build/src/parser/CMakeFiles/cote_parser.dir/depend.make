# Empty dependencies file for cote_parser.
# This may be replaced when dependencies are built.
