file(REMOVE_RECURSE
  "CMakeFiles/cote_parser.dir/binder.cc.o"
  "CMakeFiles/cote_parser.dir/binder.cc.o.d"
  "CMakeFiles/cote_parser.dir/lexer.cc.o"
  "CMakeFiles/cote_parser.dir/lexer.cc.o.d"
  "CMakeFiles/cote_parser.dir/parser.cc.o"
  "CMakeFiles/cote_parser.dir/parser.cc.o.d"
  "libcote_parser.a"
  "libcote_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
