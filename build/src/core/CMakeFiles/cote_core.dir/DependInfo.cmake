
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/cote_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/cote_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/join_count_baseline.cc" "src/core/CMakeFiles/cote_core.dir/join_count_baseline.cc.o" "gcc" "src/core/CMakeFiles/cote_core.dir/join_count_baseline.cc.o.d"
  "/root/repo/src/core/meta_optimizer.cc" "src/core/CMakeFiles/cote_core.dir/meta_optimizer.cc.o" "gcc" "src/core/CMakeFiles/cote_core.dir/meta_optimizer.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/cote_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/cote_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/multilevel.cc" "src/core/CMakeFiles/cote_core.dir/multilevel.cc.o" "gcc" "src/core/CMakeFiles/cote_core.dir/multilevel.cc.o.d"
  "/root/repo/src/core/plan_counter.cc" "src/core/CMakeFiles/cote_core.dir/plan_counter.cc.o" "gcc" "src/core/CMakeFiles/cote_core.dir/plan_counter.cc.o.d"
  "/root/repo/src/core/regression.cc" "src/core/CMakeFiles/cote_core.dir/regression.cc.o" "gcc" "src/core/CMakeFiles/cote_core.dir/regression.cc.o.d"
  "/root/repo/src/core/statement_cache.cc" "src/core/CMakeFiles/cote_core.dir/statement_cache.cc.o" "gcc" "src/core/CMakeFiles/cote_core.dir/statement_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/cote_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cote_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/cote_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
