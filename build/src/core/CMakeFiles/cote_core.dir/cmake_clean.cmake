file(REMOVE_RECURSE
  "CMakeFiles/cote_core.dir/estimator.cc.o"
  "CMakeFiles/cote_core.dir/estimator.cc.o.d"
  "CMakeFiles/cote_core.dir/join_count_baseline.cc.o"
  "CMakeFiles/cote_core.dir/join_count_baseline.cc.o.d"
  "CMakeFiles/cote_core.dir/meta_optimizer.cc.o"
  "CMakeFiles/cote_core.dir/meta_optimizer.cc.o.d"
  "CMakeFiles/cote_core.dir/model_io.cc.o"
  "CMakeFiles/cote_core.dir/model_io.cc.o.d"
  "CMakeFiles/cote_core.dir/multilevel.cc.o"
  "CMakeFiles/cote_core.dir/multilevel.cc.o.d"
  "CMakeFiles/cote_core.dir/plan_counter.cc.o"
  "CMakeFiles/cote_core.dir/plan_counter.cc.o.d"
  "CMakeFiles/cote_core.dir/regression.cc.o"
  "CMakeFiles/cote_core.dir/regression.cc.o.d"
  "CMakeFiles/cote_core.dir/statement_cache.cc.o"
  "CMakeFiles/cote_core.dir/statement_cache.cc.o.d"
  "libcote_core.a"
  "libcote_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
