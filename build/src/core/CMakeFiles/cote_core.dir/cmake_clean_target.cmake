file(REMOVE_RECURSE
  "libcote_core.a"
)
