# Empty compiler generated dependencies file for cote_core.
# This may be replaced when dependencies are built.
