file(REMOVE_RECURSE
  "libcote_query.a"
)
