file(REMOVE_RECURSE
  "CMakeFiles/cote_query.dir/equivalence.cc.o"
  "CMakeFiles/cote_query.dir/equivalence.cc.o.d"
  "CMakeFiles/cote_query.dir/query_builder.cc.o"
  "CMakeFiles/cote_query.dir/query_builder.cc.o.d"
  "CMakeFiles/cote_query.dir/query_graph.cc.o"
  "CMakeFiles/cote_query.dir/query_graph.cc.o.d"
  "libcote_query.a"
  "libcote_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
