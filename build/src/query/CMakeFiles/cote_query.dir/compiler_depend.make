# Empty compiler generated dependencies file for cote_query.
# This may be replaced when dependencies are built.
