
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/equivalence.cc" "src/query/CMakeFiles/cote_query.dir/equivalence.cc.o" "gcc" "src/query/CMakeFiles/cote_query.dir/equivalence.cc.o.d"
  "/root/repo/src/query/query_builder.cc" "src/query/CMakeFiles/cote_query.dir/query_builder.cc.o" "gcc" "src/query/CMakeFiles/cote_query.dir/query_builder.cc.o.d"
  "/root/repo/src/query/query_graph.cc" "src/query/CMakeFiles/cote_query.dir/query_graph.cc.o" "gcc" "src/query/CMakeFiles/cote_query.dir/query_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/cote_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
