# Empty compiler generated dependencies file for cote_workload.
# This may be replaced when dependencies are built.
