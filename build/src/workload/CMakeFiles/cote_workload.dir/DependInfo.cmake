
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalogs.cc" "src/workload/CMakeFiles/cote_workload.dir/catalogs.cc.o" "gcc" "src/workload/CMakeFiles/cote_workload.dir/catalogs.cc.o.d"
  "/root/repo/src/workload/random_gen.cc" "src/workload/CMakeFiles/cote_workload.dir/random_gen.cc.o" "gcc" "src/workload/CMakeFiles/cote_workload.dir/random_gen.cc.o.d"
  "/root/repo/src/workload/sql_workloads.cc" "src/workload/CMakeFiles/cote_workload.dir/sql_workloads.cc.o" "gcc" "src/workload/CMakeFiles/cote_workload.dir/sql_workloads.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/cote_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/cote_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/tpch_full.cc" "src/workload/CMakeFiles/cote_workload.dir/tpch_full.cc.o" "gcc" "src/workload/CMakeFiles/cote_workload.dir/tpch_full.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/cote_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cote_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/cote_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
