file(REMOVE_RECURSE
  "libcote_workload.a"
)
