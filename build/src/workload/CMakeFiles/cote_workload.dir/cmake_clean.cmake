file(REMOVE_RECURSE
  "CMakeFiles/cote_workload.dir/catalogs.cc.o"
  "CMakeFiles/cote_workload.dir/catalogs.cc.o.d"
  "CMakeFiles/cote_workload.dir/random_gen.cc.o"
  "CMakeFiles/cote_workload.dir/random_gen.cc.o.d"
  "CMakeFiles/cote_workload.dir/sql_workloads.cc.o"
  "CMakeFiles/cote_workload.dir/sql_workloads.cc.o.d"
  "CMakeFiles/cote_workload.dir/synthetic.cc.o"
  "CMakeFiles/cote_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/cote_workload.dir/tpch_full.cc.o"
  "CMakeFiles/cote_workload.dir/tpch_full.cc.o.d"
  "libcote_workload.a"
  "libcote_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
