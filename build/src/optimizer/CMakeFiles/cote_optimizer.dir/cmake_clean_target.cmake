file(REMOVE_RECURSE
  "libcote_optimizer.a"
)
