# Empty compiler generated dependencies file for cote_optimizer.
# This may be replaced when dependencies are built.
