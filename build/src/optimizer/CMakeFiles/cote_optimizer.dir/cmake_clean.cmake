file(REMOVE_RECURSE
  "CMakeFiles/cote_optimizer.dir/cost/cardinality.cc.o"
  "CMakeFiles/cote_optimizer.dir/cost/cardinality.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/cost/cost_model.cc.o"
  "CMakeFiles/cote_optimizer.dir/cost/cost_model.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/enumerator.cc.o"
  "CMakeFiles/cote_optimizer.dir/enumerator.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/greedy_optimizer.cc.o"
  "CMakeFiles/cote_optimizer.dir/greedy_optimizer.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/memo.cc.o"
  "CMakeFiles/cote_optimizer.dir/memo.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/cote_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/plan/dot_export.cc.o"
  "CMakeFiles/cote_optimizer.dir/plan/dot_export.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/plan/plan.cc.o"
  "CMakeFiles/cote_optimizer.dir/plan/plan.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/plan/plan_validator.cc.o"
  "CMakeFiles/cote_optimizer.dir/plan/plan_validator.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/plan_generator.cc.o"
  "CMakeFiles/cote_optimizer.dir/plan_generator.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/properties/interesting_orders.cc.o"
  "CMakeFiles/cote_optimizer.dir/properties/interesting_orders.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/properties/order_property.cc.o"
  "CMakeFiles/cote_optimizer.dir/properties/order_property.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/properties/partition_property.cc.o"
  "CMakeFiles/cote_optimizer.dir/properties/partition_property.cc.o.d"
  "CMakeFiles/cote_optimizer.dir/topdown_enumerator.cc.o"
  "CMakeFiles/cote_optimizer.dir/topdown_enumerator.cc.o.d"
  "libcote_optimizer.a"
  "libcote_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
