
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cost/cardinality.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/cost/cardinality.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/cost/cardinality.cc.o.d"
  "/root/repo/src/optimizer/cost/cost_model.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/cost/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/optimizer/enumerator.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/enumerator.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/enumerator.cc.o.d"
  "/root/repo/src/optimizer/greedy_optimizer.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/greedy_optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/greedy_optimizer.cc.o.d"
  "/root/repo/src/optimizer/memo.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/memo.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/memo.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan/dot_export.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/plan/dot_export.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/plan/dot_export.cc.o.d"
  "/root/repo/src/optimizer/plan/plan.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/plan/plan.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/plan/plan.cc.o.d"
  "/root/repo/src/optimizer/plan/plan_validator.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/plan/plan_validator.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/plan/plan_validator.cc.o.d"
  "/root/repo/src/optimizer/plan_generator.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/plan_generator.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/plan_generator.cc.o.d"
  "/root/repo/src/optimizer/properties/interesting_orders.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/properties/interesting_orders.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/properties/interesting_orders.cc.o.d"
  "/root/repo/src/optimizer/properties/order_property.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/properties/order_property.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/properties/order_property.cc.o.d"
  "/root/repo/src/optimizer/properties/partition_property.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/properties/partition_property.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/properties/partition_property.cc.o.d"
  "/root/repo/src/optimizer/topdown_enumerator.cc" "src/optimizer/CMakeFiles/cote_optimizer.dir/topdown_enumerator.cc.o" "gcc" "src/optimizer/CMakeFiles/cote_optimizer.dir/topdown_enumerator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/cote_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/cote_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
