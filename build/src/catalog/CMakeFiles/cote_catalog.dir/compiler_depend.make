# Empty compiler generated dependencies file for cote_catalog.
# This may be replaced when dependencies are built.
