file(REMOVE_RECURSE
  "libcote_catalog.a"
)
