file(REMOVE_RECURSE
  "CMakeFiles/cote_catalog.dir/catalog.cc.o"
  "CMakeFiles/cote_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/cote_catalog.dir/histogram.cc.o"
  "CMakeFiles/cote_catalog.dir/histogram.cc.o.d"
  "CMakeFiles/cote_catalog.dir/table.cc.o"
  "CMakeFiles/cote_catalog.dir/table.cc.o.d"
  "libcote_catalog.a"
  "libcote_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
