# Empty dependencies file for cote_common.
# This may be replaced when dependencies are built.
