file(REMOVE_RECURSE
  "CMakeFiles/cote_common.dir/status.cc.o"
  "CMakeFiles/cote_common.dir/status.cc.o.d"
  "CMakeFiles/cote_common.dir/str_util.cc.o"
  "CMakeFiles/cote_common.dir/str_util.cc.o.d"
  "libcote_common.a"
  "libcote_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
