file(REMOVE_RECURSE
  "libcote_common.a"
)
