
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/catalog_shapes_test.cc" "tests/CMakeFiles/workload_test.dir/workload/catalog_shapes_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/catalog_shapes_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cote_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/cote_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/cote_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cote_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/cote_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
