file(REMOVE_RECURSE
  "CMakeFiles/optimizer_test.dir/optimizer/cardinality_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/cardinality_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/cost_model_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/cost_model_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/dot_export_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/dot_export_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/enumerator_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/enumerator_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/interesting_orders_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/interesting_orders_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/memo_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/memo_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/optimizer_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/optimizer_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/order_property_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/order_property_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/partition_property_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/partition_property_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/pipeline_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/pipeline_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/plan_generator_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/plan_generator_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/plan_print_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/plan_print_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/propagation_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/propagation_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/optimizer/topdown_enumerator_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/topdown_enumerator_test.cc.o.d"
  "optimizer_test"
  "optimizer_test.pdb"
  "optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
