
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimizer/cardinality_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/cardinality_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/cardinality_test.cc.o.d"
  "/root/repo/tests/optimizer/cost_model_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/cost_model_test.cc.o.d"
  "/root/repo/tests/optimizer/dot_export_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/dot_export_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/dot_export_test.cc.o.d"
  "/root/repo/tests/optimizer/enumerator_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/enumerator_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/enumerator_test.cc.o.d"
  "/root/repo/tests/optimizer/interesting_orders_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/interesting_orders_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/interesting_orders_test.cc.o.d"
  "/root/repo/tests/optimizer/memo_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/memo_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/memo_test.cc.o.d"
  "/root/repo/tests/optimizer/optimizer_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/optimizer_test.cc.o.d"
  "/root/repo/tests/optimizer/order_property_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/order_property_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/order_property_test.cc.o.d"
  "/root/repo/tests/optimizer/partition_property_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/partition_property_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/partition_property_test.cc.o.d"
  "/root/repo/tests/optimizer/pipeline_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/pipeline_test.cc.o.d"
  "/root/repo/tests/optimizer/plan_generator_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/plan_generator_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/plan_generator_test.cc.o.d"
  "/root/repo/tests/optimizer/plan_print_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/plan_print_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/plan_print_test.cc.o.d"
  "/root/repo/tests/optimizer/propagation_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/propagation_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/propagation_test.cc.o.d"
  "/root/repo/tests/optimizer/topdown_enumerator_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/topdown_enumerator_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/topdown_enumerator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cote_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/cote_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/cote_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cote_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/cote_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
