file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/baseline_test.cc.o"
  "CMakeFiles/core_test.dir/core/baseline_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/estimator_properties_test.cc.o"
  "CMakeFiles/core_test.dir/core/estimator_properties_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/estimator_test.cc.o"
  "CMakeFiles/core_test.dir/core/estimator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/fig3_example_test.cc.o"
  "CMakeFiles/core_test.dir/core/fig3_example_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hybrid_estimator_test.cc.o"
  "CMakeFiles/core_test.dir/core/hybrid_estimator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/meta_optimizer_test.cc.o"
  "CMakeFiles/core_test.dir/core/meta_optimizer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/model_io_test.cc.o"
  "CMakeFiles/core_test.dir/core/model_io_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/multilevel_test.cc.o"
  "CMakeFiles/core_test.dir/core/multilevel_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/plan_counter_test.cc.o"
  "CMakeFiles/core_test.dir/core/plan_counter_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/policy_test.cc.o"
  "CMakeFiles/core_test.dir/core/policy_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/regression_test.cc.o"
  "CMakeFiles/core_test.dir/core/regression_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/statement_cache_test.cc.o"
  "CMakeFiles/core_test.dir/core/statement_cache_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
