
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baseline_test.cc" "tests/CMakeFiles/core_test.dir/core/baseline_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/baseline_test.cc.o.d"
  "/root/repo/tests/core/estimator_properties_test.cc" "tests/CMakeFiles/core_test.dir/core/estimator_properties_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/estimator_properties_test.cc.o.d"
  "/root/repo/tests/core/estimator_test.cc" "tests/CMakeFiles/core_test.dir/core/estimator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/estimator_test.cc.o.d"
  "/root/repo/tests/core/fig3_example_test.cc" "tests/CMakeFiles/core_test.dir/core/fig3_example_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/fig3_example_test.cc.o.d"
  "/root/repo/tests/core/hybrid_estimator_test.cc" "tests/CMakeFiles/core_test.dir/core/hybrid_estimator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hybrid_estimator_test.cc.o.d"
  "/root/repo/tests/core/meta_optimizer_test.cc" "tests/CMakeFiles/core_test.dir/core/meta_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/meta_optimizer_test.cc.o.d"
  "/root/repo/tests/core/model_io_test.cc" "tests/CMakeFiles/core_test.dir/core/model_io_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/model_io_test.cc.o.d"
  "/root/repo/tests/core/multilevel_test.cc" "tests/CMakeFiles/core_test.dir/core/multilevel_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/multilevel_test.cc.o.d"
  "/root/repo/tests/core/plan_counter_test.cc" "tests/CMakeFiles/core_test.dir/core/plan_counter_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/plan_counter_test.cc.o.d"
  "/root/repo/tests/core/policy_test.cc" "tests/CMakeFiles/core_test.dir/core/policy_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/policy_test.cc.o.d"
  "/root/repo/tests/core/regression_test.cc" "tests/CMakeFiles/core_test.dir/core/regression_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/regression_test.cc.o.d"
  "/root/repo/tests/core/statement_cache_test.cc" "tests/CMakeFiles/core_test.dir/core/statement_cache_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/statement_cache_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cote_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/cote_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/cote_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cote_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/cote_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
