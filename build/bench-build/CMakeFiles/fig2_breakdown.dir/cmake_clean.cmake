file(REMOVE_RECURSE
  "../bench/fig2_breakdown"
  "../bench/fig2_breakdown.pdb"
  "CMakeFiles/fig2_breakdown.dir/fig2_breakdown.cc.o"
  "CMakeFiles/fig2_breakdown.dir/fig2_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
