# Empty compiler generated dependencies file for ablation_pilot.
# This may be replaced when dependencies are built.
