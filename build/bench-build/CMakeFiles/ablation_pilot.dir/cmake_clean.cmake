file(REMOVE_RECURSE
  "../bench/ablation_pilot"
  "../bench/ablation_pilot.pdb"
  "CMakeFiles/ablation_pilot.dir/ablation_pilot.cc.o"
  "CMakeFiles/ablation_pilot.dir/ablation_pilot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
