# Empty compiler generated dependencies file for regression_ct.
# This may be replaced when dependencies are built.
