file(REMOVE_RECURSE
  "../bench/regression_ct"
  "../bench/regression_ct.pdb"
  "CMakeFiles/regression_ct.dir/regression_ct.cc.o"
  "CMakeFiles/regression_ct.dir/regression_ct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
