file(REMOVE_RECURSE
  "../bench/ablation_properties"
  "../bench/ablation_properties.pdb"
  "CMakeFiles/ablation_properties.dir/ablation_properties.cc.o"
  "CMakeFiles/ablation_properties.dir/ablation_properties.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
