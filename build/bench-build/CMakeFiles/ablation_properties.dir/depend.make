# Empty dependencies file for ablation_properties.
# This may be replaced when dependencies are built.
