file(REMOVE_RECURSE
  "../bench/fig5_plan_accuracy"
  "../bench/fig5_plan_accuracy.pdb"
  "CMakeFiles/fig5_plan_accuracy.dir/fig5_plan_accuracy.cc.o"
  "CMakeFiles/fig5_plan_accuracy.dir/fig5_plan_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_plan_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
