# Empty compiler generated dependencies file for fig5_plan_accuracy.
# This may be replaced when dependencies are built.
