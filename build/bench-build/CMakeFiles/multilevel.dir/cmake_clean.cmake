file(REMOVE_RECURSE
  "../bench/multilevel"
  "../bench/multilevel.pdb"
  "CMakeFiles/multilevel.dir/multilevel.cc.o"
  "CMakeFiles/multilevel.dir/multilevel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
