file(REMOVE_RECURSE
  "../bench/ablation_enumerator"
  "../bench/ablation_enumerator.pdb"
  "CMakeFiles/ablation_enumerator.dir/ablation_enumerator.cc.o"
  "CMakeFiles/ablation_enumerator.dir/ablation_enumerator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enumerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
