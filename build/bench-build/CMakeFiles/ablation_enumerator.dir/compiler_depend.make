# Empty compiler generated dependencies file for ablation_enumerator.
# This may be replaced when dependencies are built.
