file(REMOVE_RECURSE
  "../bench/fig4_overhead"
  "../bench/fig4_overhead.pdb"
  "CMakeFiles/fig4_overhead.dir/fig4_overhead.cc.o"
  "CMakeFiles/fig4_overhead.dir/fig4_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
