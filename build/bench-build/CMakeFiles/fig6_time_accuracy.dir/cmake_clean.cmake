file(REMOVE_RECURSE
  "../bench/fig6_time_accuracy"
  "../bench/fig6_time_accuracy.pdb"
  "CMakeFiles/fig6_time_accuracy.dir/fig6_time_accuracy.cc.o"
  "CMakeFiles/fig6_time_accuracy.dir/fig6_time_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
