# Empty compiler generated dependencies file for cote_bench_util.
# This may be replaced when dependencies are built.
