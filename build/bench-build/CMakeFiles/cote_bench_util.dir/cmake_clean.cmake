file(REMOVE_RECURSE
  "CMakeFiles/cote_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/cote_bench_util.dir/bench_util.cc.o.d"
  "libcote_bench_util.a"
  "libcote_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cote_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
