
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cc" "bench-build/CMakeFiles/cote_bench_util.dir/bench_util.cc.o" "gcc" "bench-build/CMakeFiles/cote_bench_util.dir/bench_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cote_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/cote_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/cote_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cote_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/cote_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
