file(REMOVE_RECURSE
  "libcote_bench_util.a"
)
