# Empty compiler generated dependencies file for policy_effects.
# This may be replaced when dependencies are built.
