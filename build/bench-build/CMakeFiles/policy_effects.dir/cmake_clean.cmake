file(REMOVE_RECURSE
  "../bench/policy_effects"
  "../bench/policy_effects.pdb"
  "CMakeFiles/policy_effects.dir/policy_effects.cc.o"
  "CMakeFiles/policy_effects.dir/policy_effects.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
