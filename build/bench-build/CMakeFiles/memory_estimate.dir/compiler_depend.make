# Empty compiler generated dependencies file for memory_estimate.
# This may be replaced when dependencies are built.
