file(REMOVE_RECURSE
  "../bench/memory_estimate"
  "../bench/memory_estimate.pdb"
  "CMakeFiles/memory_estimate.dir/memory_estimate.cc.o"
  "CMakeFiles/memory_estimate.dir/memory_estimate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
